"""Tests for the paper's three filters (Figures 2, 7, 8)."""

import pytest

from repro.circuits import (
    bandpass_filter,
    bandpass_parameters,
    chebyshev_filter,
    chebyshev_parameters,
    nominal_center_frequency,
    nominal_center_gain,
    state_variable_filter,
    state_variable_parameters,
)
from repro.spice import dc_gain, gain_at, peak_gain


class TestBandpass:
    def test_element_roster_matches_paper(self):
        circuit = bandpass_filter()
        assert set(circuit.element_names()) == {
            "R1", "R2", "R3", "R4", "Rg", "Rd", "C1", "C2",
        }

    def test_center_frequency_matches_analytic(self):
        circuit = bandpass_filter()
        f0, _gain = peak_gain(circuit, "Vin", "V1", 50.0, 2e5)
        assert f0 == pytest.approx(nominal_center_frequency(), rel=0.01)

    def test_center_gain_matches_analytic(self):
        circuit = bandpass_filter()
        _f0, gain = peak_gain(circuit, "Vin", "V1", 50.0, 2e5)
        assert gain == pytest.approx(nominal_center_gain(), rel=0.01)

    def test_center_gain_set_by_rd_rg_only(self):
        # The paper's structural fact behind Example 1's A1 row.
        circuit = bandpass_filter()
        _f0, nominal = peak_gain(circuit, "Vin", "V1", 50.0, 2e5)
        with circuit.with_deviations({"R1": 0.2, "C2": -0.2}):
            _f, perturbed = peak_gain(circuit, "Vin", "V1", 50.0, 2e5)
        assert perturbed == pytest.approx(nominal, rel=0.005)
        with circuit.with_deviations({"Rd": 0.2}):
            _f, gained = peak_gain(circuit, "Vin", "V1", 50.0, 2e5)
        assert gained == pytest.approx(nominal * 1.2, rel=0.01)

    def test_all_parameters_measurable(self):
        circuit = bandpass_filter()
        for parameter in bandpass_parameters():
            assert parameter.measure(circuit) > 0


class TestChebyshev:
    def test_element_roster_matches_figure(self):
        circuit = chebyshev_filter()
        names = set(circuit.element_names())
        assert {f"R{i}" for i in range(1, 13)} <= names  # 12 resistors
        assert {f"C{i}" for i in range(1, 6)} <= names  # 5 capacitors

    def test_low_pass_character(self):
        circuit = chebyshev_filter()
        passband = gain_at(circuit, "Vin", "Vo", 1_000.0)
        stopband = gain_at(circuit, "Vin", "Vo", 100_000.0)
        assert stopband < 0.01 * passband

    def test_fifth_order_rolloff(self):
        # Past the knee the slope approaches 100 dB/decade: a factor-2
        # frequency step drops the gain by well over 20 dB.
        circuit = chebyshev_filter()
        g30k = gain_at(circuit, "Vin", "Vo", 30_000.0)
        g60k = gain_at(circuit, "Vin", "Vo", 60_000.0)
        assert g60k < g30k / 10.0

    def test_all_parameters_measurable(self):
        circuit = chebyshev_filter()
        for parameter in chebyshev_parameters():
            assert parameter.measure(circuit) > 0


class TestStateVariable:
    def test_simultaneous_responses(self):
        circuit = state_variable_filter()
        # LP (V3): flat at DC, dead at high frequency.
        assert dc_gain(circuit, "Vin", "V3") > 0.5
        assert gain_at(circuit, "Vin", "V3", 100_000.0) < 0.05
        # HP (V1): dead at low frequency, alive above f0.
        assert gain_at(circuit, "Vin", "V1", 20.0) < 0.05
        assert gain_at(circuit, "Vin", "V1", 20_000.0) > 0.5
        # BP (V2): peaked near f0 ~ 1.6 kHz.
        peak_f, _m = peak_gain(circuit, "Vin", "V2", 100.0, 50_000.0)
        assert 800 < peak_f < 3500

    def test_divider_tap_scales_lp(self):
        circuit = state_variable_filter()
        v3 = dc_gain(circuit, "Vin", "V3")
        v3p = dc_gain(circuit, "Vin", "V3p")
        assert v3p == pytest.approx(v3 * 10_000.0 / 14_700.0, rel=1e-3)

    def test_all_parameters_measurable(self):
        circuit = state_variable_filter()
        for parameter in state_variable_parameters():
            assert parameter.measure(circuit) > 0

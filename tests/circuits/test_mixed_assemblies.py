"""Tests for the assembled mixed-signal circuits."""

import pytest

from repro.circuits import (
    TABLE4_CIRCUITS,
    benchmark_digital,
    example3_mixed_circuit,
    fig4_mixed_circuit,
)
from repro.core import MixedSignalCircuit
from repro.conversion import FlashAdc
from repro.digital.library import fig3_circuit
from repro.spice import AnalogCircuit


class TestFig4:
    def test_assembly(self):
        mixed = fig4_mixed_circuit()
        assert mixed.converter_lines == ["l0", "l2"]
        assert mixed.free_digital_inputs == ["l1", "l4"]
        assert mixed.adc.n_comparators == 2

    def test_constraint_is_thermometer(self):
        mixed = fig4_mixed_circuit()
        cbdd = mixed.compiled_digital()
        fc = mixed.constraint_builder()(cbdd.mgr)
        # Thermometer over (l0, l2): 00, 10, 11 allowed; 01 forbidden.
        assert cbdd.mgr.evaluate(fc, {"l0": 0, "l2": 1}) == 0
        assert cbdd.mgr.evaluate(fc, {"l0": 1, "l2": 0}) == 1

    def test_analog_amplitude_linear(self):
        mixed = fig4_mixed_circuit()
        a1 = mixed.analog_amplitude(2500.0, 1.0)
        a2 = mixed.analog_amplitude(2500.0, 2.0)
        assert a2 == pytest.approx(2 * a1)

    def test_converter_code_thermometer(self):
        mixed = fig4_mixed_circuit()
        # At the center frequency with gain 2, a 1.2 V stimulus peaks at
        # 2.4 V: above Vt1 (1.67 V) and below Vt2 (3.33 V).
        code = mixed.converter_code(2500.0, 1.2)
        assert code == (1, 0)

    def test_stats(self):
        stats = fig4_mixed_circuit().stats()
        assert stats["analog_elements"] == 8
        assert stats["comparators"] == 2
        assert stats["free_inputs"] == 2


class TestExample3:
    def test_assembly_per_benchmark(self):
        for name in TABLE4_CIRCUITS[:2]:
            mixed = example3_mixed_circuit(name)
            assert mixed.adc.n_comparators == 15
            assert len(mixed.converter_lines) == 15
            assert set(mixed.converter_lines) <= set(mixed.digital.inputs)

    def test_wiring_deterministic(self):
        a = example3_mixed_circuit("c432")
        b = example3_mixed_circuit("c432")
        assert a.converter_lines == b.converter_lines

    def test_benchmark_digital_fallback(self):
        circuit = benchmark_digital("c880")
        assert len(circuit.inputs) == 60

    def test_bench_dir_miss_falls_back(self, tmp_path):
        circuit = benchmark_digital("c432", bench_dir=tmp_path)
        assert len(circuit.inputs) == 36

    def test_bench_dir_hit_parses_file(self, tmp_path):
        (tmp_path / "c432.bench").write_text(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n"
        )
        circuit = benchmark_digital("c432", bench_dir=tmp_path)
        assert circuit.inputs == ["a", "b"]


class TestValidation:
    def test_converter_line_must_be_input(self):
        with pytest.raises(ValueError):
            MixedSignalCircuit(
                name="bad",
                analog=AnalogCircuit("a"),
                analog_source="Vin",
                analog_output="out",
                adc=FlashAdc(n_comparators=2),
                digital=fig3_circuit(),
                converter_lines=["l0", "nope"],
            )

    def test_line_count_must_match_comparators(self):
        with pytest.raises(ValueError):
            MixedSignalCircuit(
                name="bad",
                analog=AnalogCircuit("a"),
                analog_source="Vin",
                analog_output="out",
                adc=FlashAdc(n_comparators=3),
                digital=fig3_circuit(),
                converter_lines=["l0", "l2"],
            )

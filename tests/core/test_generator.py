"""Integration tests of the full mixed-signal test generator (Fig. 4)."""

import pytest

from repro.circuits import fig4_mixed_circuit
from repro.core import (
    AnalogTestStatus,
    MixedSignalTestGenerator,
)
from repro.digital import simulate


@pytest.fixture(scope="module")
def report():
    mixed = fig4_mixed_circuit()
    generator = MixedSignalTestGenerator(mixed)
    return mixed, generator, generator.run(include_unconstrained=True)


class TestFullFlow:
    def test_all_analog_elements_testable(self, report):
        _mixed, _gen, result = report
        assert result.analog_coverage == 1.0
        assert result.n_analog_testable == 8

    def test_recipes_complete(self, report):
        _mixed, _gen, result = report
        for test in result.analog_tests:
            assert test.status is AnalogTestStatus.TESTABLE
            assert test.stimulus is not None
            assert test.vector is not None
            assert test.observing_output in ("Vo1", "Vo2")
            assert test.ed_percent > 0

    def test_recipe_end_to_end_detects_fault(self, report):
        # The decisive integration property: apply the emitted stimulus
        # to good and faulty analog blocks, push the codes through the
        # digital circuit with the emitted vector, and the observed
        # output must differ.
        mixed, _gen, result = report
        for test in result.analog_tests:
            frequency = test.stimulus.frequency_hz
            amplitude = test.stimulus.amplitude
            good_code = mixed.converter_code(frequency, amplitude)
            # Re-derive the injected fault the generator used: ED x 1.25,
            # trying both directions (the recipe stores only the bound).
            injected = test.ed_percent / 100.0 * 1.25
            detected_any = False
            for sign in (+1, -1):
                with mixed.analog.with_deviations(
                    {test.element: sign * injected}
                ):
                    faulty_code = mixed.converter_code(frequency, amplitude)
                if faulty_code == good_code:
                    continue
                assignment = dict(test.vector)
                assignment_faulty = dict(test.vector)
                for line, good, faulty in zip(
                    mixed.converter_lines, good_code, faulty_code
                ):
                    assignment[line] = good
                    assignment_faulty[line] = faulty
                good_out = simulate(mixed.digital, assignment)
                faulty_out = simulate(mixed.digital, assignment_faulty)
                if any(
                    good_out[o] != faulty_out[o]
                    for o in mixed.digital.outputs
                ):
                    detected_any = True
                    break
            assert detected_any, f"recipe for {test.element} fails end-to-end"

    def test_program_steps(self, report):
        _mixed, _gen, result = report
        steps = result.program()
        assert len(steps) == 8
        assert all("E.D." in step.target for step in steps)

    def test_comparator_observability(self, report):
        _mixed, _gen, result = report
        assert result.comparator_observability == [True, True]
        assert result.n_blocked_comparators == 0

    def test_digital_runs_attached(self, report):
        _mixed, _gen, result = report
        assert result.digital_run is not None
        assert result.digital_run.constrained
        assert result.digital_run_unconstrained is not None
        assert (
            result.digital_run.n_untestable
            >= result.digital_run_unconstrained.n_untestable
        )

    def test_summary_mentions_everything(self, report):
        _mixed, _gen, result = report
        text = result.summary()
        assert "8/8 elements testable" in text
        assert "digital (constrained)" in text

    def test_conversion_coverage_attached(self, report):
        _mixed, _gen, result = report
        assert result.conversion_coverage is not None
        assert len(result.conversion_coverage.ed_percent) == 2


class TestGeneratorOptions:
    def test_comparator_budget_respected(self):
        mixed = fig4_mixed_circuit()
        generator = MixedSignalTestGenerator(mixed, comparator_budget=1)
        test = generator.analog_element_test("Rg")
        # With only the middle comparator allowed, the recipe must use it.
        assert test.comparator_index in (None, 1)

    def test_sensitivity_matrix_cached(self):
        mixed = fig4_mixed_circuit()
        generator = MixedSignalTestGenerator(mixed)
        first = generator.sensitivities
        second = generator.sensitivities
        assert first is second


class TestGradeDigital:
    def test_compacted_vectors_cover_the_detected_universe(self, report):
        mixed, _gen, result = report
        run = result.digital_run
        # Grade against exactly the faults the ATPG proved detectable
        # (under Fc the full universe includes untestable faults).
        detected = [
            r.fault
            for r in run.results
            if r.status.value == "detected"
        ]
        graded = result.grade_digital(mixed.digital, faults=detected)
        reference = result.grade_digital(
            mixed.digital, faults=detected, engine="reference"
        )
        assert graded == reference == 1.0

    def test_requires_a_digital_run(self):
        from repro.core import MixedTestReport

        with pytest.raises(ValueError, match="no digital"):
            MixedTestReport("empty").grade_digital(None)

    def test_diagnostics_exposed_and_none_when_decoded(self, report):
        _mixed, _gen, result = report
        assert result.digital_diagnostics is not None
        assert result.digital_diagnostics["digital_engine"] == "compiled"

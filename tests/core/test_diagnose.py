"""Tests for dictionary-based fault diagnosis."""

import pytest

from repro.circuits import fig4_mixed_circuit
from repro.core import MixedSignalTestGenerator, build_dictionary, diagnose


@pytest.fixture(scope="module")
def setup():
    mixed = fig4_mixed_circuit()
    generator = MixedSignalTestGenerator(mixed)
    report = generator.run(include_digital=False)
    return generator, report


class TestDictionary:
    def test_every_step_has_suspects(self, setup):
        generator, report = setup
        dictionary = build_dictionary(report, generator.sensitivities)
        assert set(dictionary) == {
            t.element for t in report.analog_tests if t.testable
        }
        for target, suspects in dictionary.items():
            assert target in suspects  # a step implicates its own target

    def test_a1_steps_implicate_only_rg_rd(self, setup):
        generator, report = setup
        dictionary = build_dictionary(report, generator.sensitivities)
        a1_targets = [
            t.element
            for t in report.analog_tests
            if t.parameter == "A1"
        ]
        for target in a1_targets:
            assert dictionary[target] <= {"Rg", "Rd"}


class TestDiagnose:
    def test_single_failure_narrows(self, setup):
        generator, report = setup
        # A fault in Rd fails its own step: candidates must include Rd.
        result = diagnose(report, generator.sensitivities, {"Rd"})
        assert "Rd" in result.candidates

    def test_clean_unit(self, setup):
        generator, report = setup
        result = diagnose(report, generator.sensitivities, set())
        assert result.candidates == []

    def test_multiple_failures_intersect(self, setup):
        generator, report = setup
        # Failing both the Rg step (A2-based) and the Rd step narrows to
        # elements both parameters share.
        result = diagnose(report, generator.sensitivities, {"Rg", "Rd"})
        dictionary = build_dictionary(report, generator.sensitivities)
        expected = dictionary["Rg"] & dictionary["Rd"]
        assert set(result.candidates) <= expected

    def test_unknown_step_rejected(self, setup):
        generator, report = setup
        with pytest.raises(ValueError):
            diagnose(report, generator.sensitivities, {"nonexistent"})

    def test_resolved_property(self, setup):
        generator, report = setup
        result = diagnose(report, generator.sensitivities, set())
        assert not result.resolved


class TestTable2:
    def test_glossary_renders(self):
        from repro.experiments import table2

        text = table2.run().render()
        assert "Table 2" in text
        assert "Adc" in text and "flcf" in text and "Vref" in text

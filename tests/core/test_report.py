"""Tests for the table renderer."""

import math

import pytest

from repro.core import format_ed, format_seconds, format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "v"], [["a", 1], ["long", 22]])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1  # equal widths

    def test_title(self):
        text = format_table(["h"], [["x"]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_infinity_rendered_as_dash(self):
        text = format_table(["h"], [[math.inf]])
        assert text.splitlines()[-1].strip() == "-"

    def test_float_formatting(self):
        text = format_table(["h"], [[3.14159]])
        assert "3.1" in text

    def test_cell_count_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])


class TestScalars:
    def test_format_ed(self):
        assert format_ed(12.345) == "12.3"
        assert format_ed(math.inf) == "-"
        assert format_ed(None) == "-"
        assert format_ed(5.0, width=8) == "     5.0"

    def test_format_seconds(self):
        assert format_seconds(0.0000005) == "0us"
        assert format_seconds(0.0005) == "500us"
        assert format_seconds(0.5) == "500ms"
        assert format_seconds(2.5) == "2.50s"

"""Tests for Table 1 stimulus selection."""

import pytest

from repro.atpg import CompositeValue
from repro.circuits import bandpass_filter, bandpass_parameters
from repro.core import Bound, choose_stimulus, gain_exchange_rate
from repro.spice import gain_at


@pytest.fixture(scope="module")
def circuit():
    return bandpass_filter()


@pytest.fixture(scope="module")
def parameters():
    return {p.name: p for p in bandpass_parameters()}


class TestChooseStimulus:
    def test_lower_bound_gives_d(self, circuit, parameters):
        choice = choose_stimulus(circuit, parameters["A2"], Bound.LOWER, 1.0)
        assert choice.composite is CompositeValue.D
        assert choice.good_value == 1

    def test_upper_bound_gives_dbar(self, circuit, parameters):
        choice = choose_stimulus(circuit, parameters["A2"], Bound.UPPER, 1.0)
        assert choice.composite is CompositeValue.D_BAR
        assert choice.good_value == 0

    def test_good_circuit_peak_on_expected_side(self, circuit, parameters):
        vref = 1.0
        for bound, expected in ((Bound.LOWER, 1), (Bound.UPPER, 0)):
            choice = choose_stimulus(
                circuit, parameters["A2"], bound, vref
            )
            peak = choice.stimulus.amplitude * gain_at(
                circuit, "Vin", "V1", choice.stimulus.frequency_hz
            )
            assert (peak > vref) == bool(expected)

    def test_faulty_gain_crosses_reference(self, circuit, parameters):
        # A gain fault just beyond the bound must flip the comparator.
        vref = 1.0
        x = 0.05
        choice = choose_stimulus(
            circuit, parameters["A2"], Bound.LOWER, vref, x=x
        )
        nominal_gain = gain_at(
            circuit, "Vin", "V1", choice.stimulus.frequency_hz
        )
        faulty_peak = choice.stimulus.amplitude * nominal_gain * (1 - 1.5 * x)
        assert faulty_peak < vref  # crossed downward: D

    def test_ac_gain_stimulated_at_own_frequency(self, circuit, parameters):
        choice = choose_stimulus(circuit, parameters["A2"], Bound.LOWER, 1.0)
        assert choice.stimulus.frequency_hz == 10_000.0

    def test_peak_gain_stimulated_at_peak(self, circuit, parameters):
        choice = choose_stimulus(circuit, parameters["A1"], Bound.LOWER, 1.0)
        assert choice.stimulus.frequency_hz == pytest.approx(2500.0, rel=0.02)

    def test_cutoff_stimulated_at_nominal_cutoff(self, circuit, parameters):
        choice = choose_stimulus(circuit, parameters["fc2"], Bound.LOWER, 1.0)
        assert choice.stimulus.frequency_hz == pytest.approx(3202.0, rel=0.02)

    def test_amplitude_scales_with_vref(self, circuit, parameters):
        low = choose_stimulus(circuit, parameters["A2"], Bound.LOWER, 1.0)
        high = choose_stimulus(circuit, parameters["A2"], Bound.LOWER, 2.0)
        assert high.stimulus.amplitude == pytest.approx(
            2 * low.stimulus.amplitude
        )

    def test_composite_requires_split(self):
        from repro.core import StimulusChoice
        from repro.analog import ParameterKind
        from repro.atpg import AnalogStimulus

        broken = StimulusChoice(
            "T", ParameterKind.DC_GAIN, Bound.LOWER,
            AnalogStimulus(1.0, 0.0), good_value=1, faulty_value=1,
        )
        with pytest.raises(ValueError):
            broken.composite


class TestExchangeRate:
    def test_cutoff_exchange_positive(self, circuit, parameters):
        y = gain_exchange_rate(circuit, parameters["fc2"], 0.05)
        assert y > 0.01  # a 5% cutoff shift visibly moves the gain

    def test_peak_exchange_small(self, circuit, parameters):
        # At the response peak the first derivative vanishes: the
        # exchange rate is much smaller than at the cut-off.
        y_peak = gain_exchange_rate(circuit, parameters["f0"], 0.05)
        y_cut = gain_exchange_rate(circuit, parameters["fc2"], 0.05)
        assert y_peak < y_cut

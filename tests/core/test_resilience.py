"""Resilience primitives: retry policies, deadlines, failure records."""

import time

import pytest

from repro.api import Artifact, ConfigError
from repro.core.resilience import (
    Deadline,
    FailureRecord,
    RetryPolicy,
    call_with_retry,
)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigError):
            RetryPolicy(base_delay=-0.1)
        with pytest.raises(ConfigError):
            RetryPolicy(base_delay=1.0, max_delay=0.5)
        with pytest.raises(ConfigError):
            RetryPolicy(jitter=1.5)

    def test_should_retry_counts_total_attempts(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.should_retry(1)
        assert policy.should_retry(2)
        assert not policy.should_retry(3)
        assert not RetryPolicy(max_attempts=1).should_retry(1)

    def test_delay_is_a_pure_function_of_seed_key_attempt(self):
        a = RetryPolicy(seed=7)
        b = RetryPolicy(seed=7)
        assert a.delay("shard-3", 1) == b.delay("shard-3", 1)
        assert a.delay("shard-3", 2) == b.delay("shard-3", 2)
        # Different keys and seeds jitter differently.
        assert a.delay("shard-3", 1) != a.delay("shard-4", 1)
        assert a.delay("shard-3", 1) != RetryPolicy(seed=8).delay("shard-3", 1)

    def test_delay_grows_exponentially_and_clamps(self):
        policy = RetryPolicy(
            base_delay=0.1, max_delay=0.4, jitter=0.0, max_attempts=6
        )
        assert policy.delays("k") == [0.1, 0.2, 0.4, 0.4, 0.4]

    def test_jitter_only_shrinks_within_bounds(self):
        policy = RetryPolicy(base_delay=1.0, jitter=0.25, max_delay=1.0)
        for attempt in range(1, 10):
            delay = policy.delay("k", attempt)
            assert 0.75 <= delay <= 1.0

    def test_zero_base_delay_means_immediate_retry(self):
        assert RetryPolicy(base_delay=0.0, max_delay=0.0).delay("k", 1) == 0.0

    def test_bad_attempt_rejected(self):
        with pytest.raises(ConfigError):
            RetryPolicy().delay("k", 0)


class TestDeadline:
    def test_unbounded(self):
        deadline = Deadline(None)
        assert deadline.remaining() is None
        assert not deadline.expired()

    def test_expiry(self):
        deadline = Deadline(0.01)
        time.sleep(0.03)
        assert deadline.expired()
        assert deadline.remaining() == 0.0
        assert deadline.elapsed() >= 0.01

    def test_validation(self):
        with pytest.raises(ConfigError):
            Deadline(0.0)
        with pytest.raises(ConfigError):
            Deadline(-1.0)


class TestFailureRecord:
    def test_document_round_trip(self):
        record = FailureRecord(
            phase="shard",
            error="ValueError: boom",
            attempts=2,
            key="3",
            fingerprint="f" * 64,
            detail={"kind": "exception", "start": 10, "stop": 20},
        )
        assert FailureRecord.from_document(record.to_document()) == record

    def test_from_exception_formats_type_and_message(self):
        record = FailureRecord.from_exception("job", ValueError("boom"))
        assert record.error == "ValueError: boom"
        assert record.attempts == 1

    def test_failure_artifact_round_trip(self):
        """The "failure" artifact kind's codec round-trips."""
        record = FailureRecord(phase="recovery", error="X: y", key="j000001")
        artifact = Artifact.from_failure(record)
        assert artifact.kind == "failure"
        reloaded = Artifact.from_json(artifact.to_json())
        assert reloaded.failure() == record
        assert reloaded.to_json() == artifact.to_json()


class TestCallWithRetry:
    def test_succeeds_after_transient_failures(self):
        calls = []

        def flaky(attempt):
            calls.append(attempt)
            if attempt < 3:
                raise ValueError(f"attempt {attempt}")
            return "ok"

        slept = []
        result = call_with_retry(
            flaky, RetryPolicy(max_attempts=3), "k", sleep=slept.append
        )
        assert result == "ok"
        assert calls == [1, 2, 3]
        assert len(slept) == 2

    def test_final_failure_propagates(self):
        def always(attempt):
            raise ValueError("always")

        with pytest.raises(ValueError):
            call_with_retry(
                always, RetryPolicy(max_attempts=2), "k", sleep=lambda s: None
            )

    def test_non_retryable_raises_immediately(self):
        calls = []

        def fatal(attempt):
            calls.append(attempt)
            raise KeyError("fatal")

        with pytest.raises(KeyError):
            call_with_retry(
                fatal,
                RetryPolicy(max_attempts=5),
                "k",
                retryable=lambda e: not isinstance(e, KeyError),
                sleep=lambda s: None,
            )
        assert calls == [1]

"""The unified result cache: L1 memo semantics and the on-disk L2."""

import os
import time

import pytest

from repro.api.artifact import Artifact
from repro.api.config import ConfigError
from repro.core.cache import L1Cache, ResultCache, check_fingerprint
from repro.core.fingerprint import fingerprint_of


def fp(n: int) -> str:
    return fingerprint_of({"n": n})


def entry(n: int) -> Artifact:
    return Artifact.from_cache_entry("unit-test", {"n": n})


# ----------------------------------------------------------------------
class TestL1Cache:
    def test_get_put_and_counters(self):
        cache = L1Cache(max_size=4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats() == {
            "hits": 1, "misses": 1, "size": 1, "max_size": 4,
        }

    def test_lru_eviction_order(self):
        cache = L1Cache(max_size=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh: "b" is now least recent
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_setdefault_first_write_wins(self):
        cache = L1Cache()
        assert cache.setdefault("k", "first") == "first"
        assert cache.setdefault("k", "second") == "first"

    def test_unbounded_and_clear(self):
        cache = L1Cache()
        for n in range(100):
            cache.put(n, n)
        assert len(cache) == 100
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["hits"] == 0  # counters survive, not reset

    def test_bad_bound_rejected(self):
        with pytest.raises(ValueError):
            L1Cache(max_size=0)


# ----------------------------------------------------------------------
class TestResultCacheArtifacts:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put_artifact("unit-test", fp(1), entry(1))
        loaded = cache.get_artifact("unit-test", fp(1))
        assert loaded.kind == "cache-entry"
        assert loaded.payload == {
            "namespace": "unit-test", "document": {"n": 1},
        }

    def test_miss_and_counters(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get_artifact("unit-test", fp(9)) is None
        cache.put_artifact("unit-test", fp(1), entry(1))
        cache.get_artifact("unit-test", fp(1))
        stats = cache.stats()
        assert (stats["hits"], stats["misses"], stats["puts"]) == (1, 1, 1)
        assert stats["namespaces"]["unit-test"]["entries"] == 1

    def test_first_write_wins(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put_artifact("unit-test", fp(1), entry(1))
        cache.put_artifact("unit-test", fp(1), entry(2))  # ignored
        assert cache.get_artifact("unit-test", fp(1)).payload["document"] == {
            "n": 1
        }
        assert cache.stats()["puts"] == 1

    def test_wrong_kind_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put_artifact("unit-test", fp(1), entry(1))
        assert cache.get_artifact("unit-test", fp(1), kind="report") is None

    def test_has_artifact_does_not_count(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert not cache.has_artifact("unit-test", fp(1))
        cache.put_artifact("unit-test", fp(1), entry(1))
        assert cache.has_artifact("unit-test", fp(1))
        stats = cache.stats()
        assert stats["hits"] == 0 and stats["misses"] == 0

    def test_key_validation(self, tmp_path):
        cache = ResultCache(tmp_path)
        with pytest.raises(ConfigError):
            cache.put_artifact("unit-test", "short", entry(1))
        with pytest.raises(ConfigError):
            cache.put_artifact("../escape", fp(1), entry(1))
        assert check_fingerprint(fp(1)) == fp(1)

    def test_listing(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put_artifact("unit-test", fp(1), entry(1))
        cache.put_artifact("other-ns", fp(2), entry(2))
        assert cache.namespaces() == ["other-ns", "unit-test"]
        assert cache.fingerprints("unit-test") == [fp(1)]


# ----------------------------------------------------------------------
class TestResultCacheBlobs:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put_bytes("unit-test", fp(1), b"\x00\x01payload")
        assert cache.get_bytes("unit-test", fp(1)) == b"\x00\x01payload"

    def test_corruption_reads_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put_bytes("unit-test", fp(1), b"payload")
        blob = path.read_bytes()
        path.write_bytes(blob[:-1] + b"X")  # flip the last payload byte
        assert cache.get_bytes("unit-test", fp(1)) is None

    def test_verify_reports_corruption(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put_bytes("unit-test", fp(1), b"good")
        bad = cache.put_bytes("unit-test", fp(2), b"soon-bad")
        bad.write_bytes(b"not a blob at all")
        cache.put_artifact("unit-test", fp(3), entry(3))
        report = cache.verify()
        assert report["checked"] == 3
        assert report["ok"] == 2
        [row] = report["corrupt"]
        assert row["fingerprint"] == fp(2)


# ----------------------------------------------------------------------
class TestResultCacheGc:
    def _aged_cache(self, tmp_path):
        # A clock injected far in the future makes every entry "old",
        # so gc decisions do not depend on test wall-clock timing.
        return ResultCache(tmp_path, now=lambda: time.time() + 3600)

    def test_keep_set_sweeps_the_rest(self, tmp_path):
        cache = self._aged_cache(tmp_path)
        for n in range(3):
            cache.put_artifact("unit-test", fp(n), entry(n))
        removed = cache.gc(keep=[fp(0)], namespace="unit-test")
        assert removed == [("unit-test", fp(1)), ("unit-test", fp(2))]
        assert cache.fingerprints("unit-test") == [fp(0)]

    def test_keep_requires_namespace(self, tmp_path):
        with pytest.raises(ConfigError):
            self._aged_cache(tmp_path).gc(keep=[fp(0)])

    def test_max_bytes_evicts_oldest_first(self, tmp_path):
        cache = self._aged_cache(tmp_path)
        for n in range(3):
            path = cache.put_artifact("unit-test", fp(n), entry(n))
            os.utime(path, (n, n))  # mtime order == insertion order
        removed = cache.gc(max_bytes=cache.stats()["bytes"] - 1)
        assert removed == [("unit-test", fp(0))]

    def test_max_bytes_zero_empties_the_cache(self, tmp_path):
        cache = self._aged_cache(tmp_path)
        cache.put_artifact("unit-test", fp(1), entry(1))
        cache.put_bytes("other-ns", fp(2), b"blob")
        removed = cache.gc(max_bytes=0)
        assert len(removed) == 2
        assert cache.stats()["entries"] == 0

    def test_fresh_entries_survive_the_sweep(self, tmp_path):
        # Clock pinned in the past: every entry postdates the sweep
        # start, so the race rule keeps them all.
        cache = ResultCache(tmp_path, now=lambda: time.time() - 3600)
        cache.put_artifact("unit-test", fp(1), entry(1))
        assert cache.gc(max_bytes=0) == []
        assert cache.has_artifact("unit-test", fp(1))

    def test_stale_tmp_files_are_swept(self, tmp_path):
        cache = self._aged_cache(tmp_path)
        cache.put_artifact("unit-test", fp(1), entry(1))
        shard = cache.path_for("unit-test", fp(1)).parent
        stray = shard / "leftover.tmp"
        stray.write_text("in-flight once")
        cache.gc(keep=[fp(1)], namespace="unit-test")
        assert not stray.exists()
        assert cache.has_artifact("unit-test", fp(1))


# ----------------------------------------------------------------------
class TestCacheEntryArtifact:
    def test_cache_entry_kind_round_trips(self, tmp_path):
        # The registered "cache-entry" codec: save/load preserves the
        # namespace + document payload exactly.
        artifact = Artifact.from_cache_entry(
            "audit", {"outcomes": [1, 2]}, circuit="fig4", meta={"v": 1}
        )
        assert artifact.kind == "cache-entry"
        path = artifact.save(tmp_path / "entry.json")
        loaded = Artifact.load(path)
        assert loaded.kind == "cache-entry"
        assert loaded.payload == {
            "namespace": "audit", "document": {"outcomes": [1, 2]},
        }
        assert loaded.circuit == "fig4"
        assert loaded.meta == {"v": 1}

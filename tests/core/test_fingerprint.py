"""The one canonical digest: every fingerprint helper agrees.

The repo historically had three canonical-JSON digest implementations
(sharding, the job queue, the artifact store).  They are now all routed
through :mod:`repro.core.fingerprint`; these tests pin the canonical
form and the cross-implementation equalities the dedup story rests on.
"""

import hashlib
import json

from repro.core.fingerprint import (
    canonical_json,
    fingerprint_of,
    netlist_fingerprint,
    sha256_bytes,
    sha256_text,
)
from repro.digital.netlist import Circuit
from repro.digital.gates import GateType


class TestCanonicalForm:
    def test_canonical_json_sorts_keys(self):
        assert canonical_json({"b": 1, "a": 2}) == '{"a": 2, "b": 1}'

    def test_fingerprint_is_sha256_of_canonical_json(self):
        document = {"z": [1.5, -0.25], "a": "x"}
        expected = hashlib.sha256(
            json.dumps(document, sort_keys=True).encode("utf-8")
        ).hexdigest()
        assert fingerprint_of(document) == expected

    def test_key_order_does_not_matter(self):
        assert fingerprint_of({"a": 1, "b": 2}) == fingerprint_of(
            {"b": 2, "a": 1}
        )

    def test_value_changes_do_matter(self):
        assert fingerprint_of({"a": 1}) != fingerprint_of({"a": 2})

    def test_sha256_text_matches_sha256_bytes(self):
        assert sha256_text("abc") == sha256_bytes(b"abc")
        assert sha256_text("abc") == hashlib.sha256(b"abc").hexdigest()


class TestCrossImplementationEquality:
    """The three pre-unification digests still hash identically."""

    def test_store_fingerprint_is_fingerprint_of(self):
        from repro.service.store import fingerprint_of as store_fp

        document = {"kind": "campaign", "seed": 7}
        assert store_fp(document) == fingerprint_of(document)

    def test_job_spec_fingerprint_matches_direct_hash(self):
        from repro.service.jobs import JobSpec

        spec = JobSpec(circuit="fig4")
        campaign = spec.campaign
        document = {
            "kind": "campaign-job",
            "circuit": "fig4",
            "campaign": {
                "seed": campaign.seed,
                "faults_per_element": campaign.faults_per_element,
                "severity_range": list(campaign.severity_range),
                "engine": campaign.engine,
                "backend": campaign.backend,
                "digital_engine": campaign.digital_engine,
            },
            "generator": spec.generator.as_dict(),
        }
        assert spec.fingerprint() == fingerprint_of(document)

    def test_campaign_fingerprint_matches_legacy_form(self):
        # The pre-refactor implementation hashed
        # json.dumps(document, sort_keys=True).encode("utf-8") directly;
        # the routed version must stay byte-compatible so existing
        # checkpoints and store entries keep their keys.
        from repro.api.config import CampaignConfig
        from repro.core.sharding import campaign_fingerprint

        config = CampaignConfig(faults_per_element=2, seed=7)
        document = {
            "circuit": "fig4-mixed",
            "seed": config.seed,
            "faults_per_element": config.faults_per_element,
            "severity_range": list(config.severity_range),
            "engine": config.engine,
            "backend": config.backend,
            "digital_engine": config.digital_engine,
            "faults": [],
            "steps": [],
        }
        legacy = hashlib.sha256(
            json.dumps(document, sort_keys=True).encode("utf-8")
        ).hexdigest()
        assert campaign_fingerprint("fig4-mixed", config, []) == legacy


class TestNetlistFingerprint:
    def _circuit(self):
        c = Circuit("c")
        c.add_input("a")
        c.add_input("b")
        c.add_gate("y", GateType.AND, ["a", "b"])
        c.add_output("y")
        return c

    def test_equal_netlists_share_a_digest(self):
        assert netlist_fingerprint(self._circuit()) == netlist_fingerprint(
            self._circuit()
        )

    def test_structural_change_changes_the_digest(self):
        changed = self._circuit()
        changed.add_gate("z", GateType.NOT, ["y"])
        changed.add_output("z")
        assert netlist_fingerprint(self._circuit()) != netlist_fingerprint(
            changed
        )

    def test_circuit_method_caches_and_matches(self):
        circuit = self._circuit()
        digest = circuit.fingerprint()
        assert digest == netlist_fingerprint(circuit)
        assert circuit.fingerprint() == digest  # cached path
        circuit.add_gate("z", GateType.NOT, ["y"])
        circuit.add_output("z")
        assert circuit.fingerprint() != digest  # staleness key trips

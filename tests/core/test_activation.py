"""Tests for analog fault activation through the converter."""

import pytest

from repro.analog import parametric
from repro.atpg import CompositeValue
from repro.circuits import bandpass_filter, bandpass_parameters, fig4_mixed_circuit
from repro.core import Bound, activate, choose_stimulus


@pytest.fixture(scope="module")
def mixed():
    return fig4_mixed_circuit()


@pytest.fixture(scope="module")
def a2():
    return next(p for p in bandpass_parameters() if p.name == "A2")


class TestActivate:
    def test_gain_drop_produces_d(self, mixed, a2):
        vref = mixed.adc.threshold(0)
        choice = choose_stimulus(mixed.analog, a2, Bound.LOWER, vref)
        fault = parametric("Rg", +0.5)  # Rg up -> gain down
        result = activate(mixed, fault, choice)
        assert result.activated
        assert result.pinned["l0"] is CompositeValue.D

    def test_tiny_fault_not_activated(self, mixed, a2):
        vref = mixed.adc.threshold(0)
        choice = choose_stimulus(mixed.analog, a2, Bound.LOWER, vref)
        fault = parametric("Rg", +0.001)  # inside tolerance
        result = activate(mixed, fault, choice)
        assert not result.activated

    def test_gain_rise_produces_dbar(self, mixed, a2):
        vref = mixed.adc.threshold(0)
        choice = choose_stimulus(mixed.analog, a2, Bound.UPPER, vref)
        fault = parametric("Rg", -0.4)  # Rg down -> gain up
        result = activate(mixed, fault, choice)
        assert result.activated
        assert CompositeValue.D_BAR in result.pinned.values()

    def test_pinned_covers_all_converter_lines(self, mixed, a2):
        vref = mixed.adc.threshold(0)
        choice = choose_stimulus(mixed.analog, a2, Bound.LOWER, vref)
        result = activate(mixed, parametric("Rg", 0.5), choice)
        assert set(result.pinned) == set(mixed.converter_lines)

    def test_composite_lines_listing(self, mixed, a2):
        vref = mixed.adc.threshold(0)
        choice = choose_stimulus(mixed.analog, a2, Bound.LOWER, vref)
        result = activate(mixed, parametric("Rg", 0.5), choice)
        assert result.composite_lines() == [
            line
            for line, v in result.pinned.items()
            if v in (CompositeValue.D, CompositeValue.D_BAR)
        ]

    def test_analog_state_restored_after_activation(self, mixed, a2):
        vref = mixed.adc.threshold(0)
        choice = choose_stimulus(mixed.analog, a2, Bound.LOWER, vref)
        activate(mixed, parametric("Rg", 0.5), choice)
        assert mixed.analog.deviations() == {}

"""Tests for the fault-injection campaign."""

import pytest

from repro.circuits import fig4_mixed_circuit
from repro.core import MixedSignalTestGenerator, run_campaign


@pytest.fixture(scope="module")
def campaign():
    mixed = fig4_mixed_circuit()
    report = MixedSignalTestGenerator(mixed).run(include_digital=False)
    result = run_campaign(
        mixed, report, faults_per_element=4, seed=7
    )
    return result


class TestCampaign:
    def test_population_size(self, campaign):
        assert campaign.n_injected == 8 * 4  # 8 elements x 4 faults

    def test_guaranteed_faults_all_detected(self, campaign):
        # The method's core promise: deviations beyond the computed
        # worst case are always caught.
        assert campaign.guaranteed_detection_rate == 1.0

    def test_overall_rate_reasonable(self, campaign):
        # Sub-threshold faults may escape (they are inside the guaranteed
        # band), but the program should still catch a solid majority.
        assert campaign.detection_rate() > 0.6

    def test_outcomes_recorded(self, campaign):
        for outcome in campaign.outcomes:
            assert outcome.severity > 0
            if outcome.detected:
                assert outcome.detecting_target is not None

    def test_summary_text(self, campaign):
        text = campaign.summary()
        assert "faults injected" in text

    def test_deterministic(self):
        mixed = fig4_mixed_circuit()
        report = MixedSignalTestGenerator(mixed).run(include_digital=False)
        a = run_campaign(mixed, report, faults_per_element=2, seed=3)
        b = run_campaign(mixed, report, faults_per_element=2, seed=3)
        assert [o.deviation for o in a.outcomes] == [
            o.deviation for o in b.outcomes
        ]

    def test_empty_severity_band(self, campaign):
        assert campaign.detection_rate(min_severity=100.0) == 1.0


class TestBatchedExecution:
    @pytest.fixture(scope="class")
    def prepared(self):
        mixed = fig4_mixed_circuit()
        report = MixedSignalTestGenerator(mixed).run(include_digital=False)
        return mixed, report

    def test_batched_outcomes_identical_to_looped(self, prepared):
        from repro.api.config import CampaignConfig

        mixed, report = prepared
        config = CampaignConfig(faults_per_element=4, seed=7)
        batched = run_campaign(mixed, report, config=config)
        looped = run_campaign(
            mixed, report, config=config.replace(batch=False)
        )
        assert batched.outcomes == looped.outcomes

    def test_diagnostics_report_batch_traffic(self, prepared):
        from repro.api.config import CampaignConfig

        mixed, report = prepared
        config = CampaignConfig(faults_per_element=4, seed=7)
        batched = run_campaign(mixed, report, config=config)
        looped = run_campaign(
            mixed, report, config=config.replace(batch=False)
        )
        assert batched.diagnostics["batch"] is True
        assert batched.diagnostics["batched_gains"] == batched.n_injected
        assert batched.diagnostics["multi_rhs_solves"] >= 1
        assert looped.diagnostics["batch"] is False
        assert looped.diagnostics["batched_gains"] == 0
        assert looped.diagnostics["multi_rhs_solves"] == 0
        # The batch precompute replaces per-direction single solves.
        assert (
            batched.diagnostics["solve_calls"]
            < looped.diagnostics["solve_calls"]
        )

    def test_sharded_batched_matches_unsharded(self, prepared):
        from repro.api.config import CampaignConfig

        mixed, report = prepared
        config = CampaignConfig(faults_per_element=3, seed=9)
        unsharded = run_campaign(mixed, report, config=config)
        sharded = run_campaign(
            mixed, report, config=config.replace(shards=3, shard_workers=1)
        )
        assert sharded.outcomes == unsharded.outcomes
        assert sharded.diagnostics["batch"] is True

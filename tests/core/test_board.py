"""Tests for the simulated Figure 8 validation board."""

import pytest

from repro.analog import deviation_matrix
from repro.circuits import state_variable_parameters
from repro.core import StateVariableBoard


@pytest.fixture(scope="module")
def board():
    return StateVariableBoard(seed=1995)


class TestRealization:
    def test_deterministic_per_seed(self):
        a = StateVariableBoard(seed=42)
        b = StateVariableBoard(seed=42)
        assert a.realization == b.realization

    def test_different_seeds_differ(self):
        a = StateVariableBoard(seed=1)
        b = StateVariableBoard(seed=2)
        assert a.realization != b.realization

    def test_spread_is_bounded(self, board):
        # 2 % sigma: 5-sigma outliers are effectively impossible.
        assert all(abs(d) < 0.10 for d in board.realization.values())


class TestMeasurement:
    def test_measurement_noise_applied(self, board):
        parameter = board.parameters[2]  # A3dc, a cheap DC measure
        values = {board.measure(parameter) for _ in range(5)}
        assert len(values) > 1  # noise makes repeats differ

    def test_fault_shifts_measurement(self, board):
        parameter = board.parameters[2]  # A3dc
        nominal = board.measure(parameter)
        faulty = board.measure(parameter, {"R2": 0.5})
        assert abs(faulty - nominal) / nominal > 0.10


class TestDigitalResponse:
    def test_baseline_in_range(self, board):
        response = board.digital_response()
        assert 0 <= response < 32  # 5-bit adder result

    def test_gross_fault_changes_code(self, board):
        baseline = board.digital_response()
        faulty = board.digital_response({"R2": 0.8})
        assert faulty != baseline


class TestTable8:
    def test_rows_with_cheap_matrix(self, board):
        # Restrict to the inexpensive DC/AC-gain parameters so the test
        # stays fast; the full set runs in the benchmark.
        cheap = [
            p for p in state_variable_parameters() if p.name != "fh1"
        ]
        matrix = deviation_matrix(
            board.circuit, cheap, elements=["R1", "R2", "R8"]
        )
        rows = board.table8(matrix)
        assert rows
        for row in rows:
            assert row.cd_percent > 0
            assert row.mpd_percent > 5.0  # out of the tolerance box
            assert row.out_of_box

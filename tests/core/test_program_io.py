"""Tests for test-program serialization."""

import json

import pytest

from repro.atpg import AnalogStimulus, DigitalVector, MixedTestStep
from repro.core import TestProgram, dumps, loads, program_from_report


def sample_program() -> TestProgram:
    return TestProgram(
        circuit_name="demo",
        analog_steps=[
            MixedTestStep(
                target="Rd (E.D. 10.0% via A1)",
                stimulus=AnalogStimulus(1.7, 2500.0, "lower bound"),
                vector=DigitalVector.from_mapping({"l1": 1, "l4": 0}),
                observe="Vo1",
                expected=1,
            ),
            MixedTestStep(target="bare"),
        ],
        digital_vectors=[{"l0": 1, "l1": 0, "l2": 1, "l4": 0}],
    )


class TestRoundTrip:
    def test_dumps_loads_identity(self):
        program = sample_program()
        recovered = loads(dumps(program))
        assert recovered.circuit_name == program.circuit_name
        assert recovered.digital_vectors == program.digital_vectors
        assert len(recovered.analog_steps) == 2
        first = recovered.analog_steps[0]
        assert first.stimulus.amplitude == 1.7
        assert first.vector.as_dict() == {"l1": 1, "l4": 0}
        assert first.observe == "Vo1"
        assert first.expected == 1

    def test_bare_step_round_trips(self):
        recovered = loads(dumps(sample_program()))
        bare = recovered.analog_steps[1]
        assert bare.stimulus is None
        assert bare.vector is None

    def test_json_is_stable(self):
        a = dumps(sample_program())
        b = dumps(sample_program())
        assert a == b
        json.loads(a)  # valid JSON

    def test_version_check(self):
        document = json.loads(dumps(sample_program()))
        document["format_version"] = 99
        with pytest.raises(ValueError):
            loads(json.dumps(document))

    def test_n_steps(self):
        assert sample_program().n_steps == 3


class TestFromReport:
    def test_extracts_generator_output(self):
        from repro.circuits import fig4_mixed_circuit
        from repro.core import MixedSignalTestGenerator

        mixed = fig4_mixed_circuit()
        report = MixedSignalTestGenerator(mixed).run()
        program = program_from_report(report)
        assert program.circuit_name == "fig4-mixed"
        assert len(program.analog_steps) == 8
        assert program.digital_vectors
        recovered = loads(dumps(program))
        assert recovered.n_steps == program.n_steps

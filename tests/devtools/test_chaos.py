"""The chaos harness: plan codec, matching, firing, resolution."""

import pytest

from repro.devtools.chaos import (
    CHAOS_ENV,
    ChaosError,
    ChaosEvent,
    ChaosPlan,
    resolve_plan,
)


class TestChaosEvent:
    def test_validation(self):
        with pytest.raises(ChaosError):
            ChaosEvent(site="nope", key="*")
        with pytest.raises(ChaosError):
            ChaosEvent(site="shard", key="0", action="explode")
        with pytest.raises(ChaosError):
            ChaosEvent(site="shard", key="0", attempts=())
        with pytest.raises(ChaosError):
            ChaosEvent(site="shard", key="0", attempts=(0,))
        with pytest.raises(ChaosError):
            ChaosEvent(site="shard", key="0", seconds=-1.0)

    def test_matching_is_pure_on_site_key_attempt(self):
        event = ChaosEvent(site="shard", key="2", attempts=(1, 3))
        assert event.matches("shard", 2, 1)  # int keys stringify
        assert event.matches("shard", "2", 3)
        assert not event.matches("shard", 2, 2)
        assert not event.matches("shard", 3, 1)
        assert not event.matches("job", 2, 1)

    def test_wildcard_key(self):
        event = ChaosEvent(site="http", key="*")
        assert event.matches("http", "GET /jobs", 1)
        assert event.matches("http", "POST /jobs", 1)

    def test_document_round_trip(self):
        event = ChaosEvent(
            site="shard", key="1", action="delay", attempts=(2,), seconds=0.5
        )
        assert ChaosEvent.from_document(event.to_document()) == event

    def test_unknown_keys_rejected(self):
        with pytest.raises(ChaosError):
            ChaosEvent.from_document({"site": "shard", "key": "0", "when": 1})


class TestChaosPlan:
    def test_json_round_trip(self):
        plan = ChaosPlan(
            events=(
                ChaosEvent(site="shard", key="0", action="kill"),
                ChaosEvent(site="merge", key="merge"),
            )
        )
        assert ChaosPlan.from_json(plan.to_json()) == plan

    def test_first_matching_event_wins(self):
        plan = ChaosPlan(
            events=(
                ChaosEvent(site="shard", key="1", action="delay"),
                ChaosEvent(site="shard", key="*", action="raise"),
            )
        )
        assert plan.event_for("shard", 1).action == "delay"
        assert plan.event_for("shard", 2).action == "raise"
        assert plan.event_for("shard", 1, attempt=2) is None

    def test_fire_raise(self):
        plan = ChaosPlan(events=(ChaosEvent(site="job", key="fig4"),))
        with pytest.raises(ChaosError):
            plan.fire("job", "fig4")
        assert plan.fire("job", "other") is None

    def test_fire_delay_sleeps_and_returns_event(self):
        plan = ChaosPlan(
            events=(
                ChaosEvent(
                    site="shard", key="0", action="delay", seconds=0.0
                ),
            )
        )
        event = plan.fire("shard", 0)
        assert event is not None and event.action == "delay"

    def test_fire_kill_degrades_to_raise_in_process(self):
        plan = ChaosPlan(
            events=(ChaosEvent(site="shard", key="0", action="kill"),)
        )
        with pytest.raises(ChaosError):
            plan.fire("shard", 0, in_process=True)
        # (the not-in_process branch would os._exit(43): tested end-to-end
        # by the executor's worker-kill differential test)

    def test_malformed_plans_fail_loudly(self):
        for bad in ("not json", "[1]", '{"events": 3}', '{"events": [4]}'):
            with pytest.raises(ChaosError):
                ChaosPlan.from_json(bad)


class TestResolvePlan:
    def test_none_when_nothing_set(self):
        assert resolve_plan(None, environ={}) is None

    def test_explicit_spec_wins_over_environment(self):
        spec = ChaosPlan(
            events=(ChaosEvent(site="merge", key="merge"),)
        ).to_json()
        env = {CHAOS_ENV: '{"events": []}'}
        plan = resolve_plan(spec, environ=env)
        assert plan is not None and plan.events[0].site == "merge"

    def test_environment_fallback(self):
        spec = ChaosPlan(
            events=(ChaosEvent(site="http", key="*"),)
        ).to_json()
        plan = resolve_plan(None, environ={CHAOS_ENV: spec})
        assert plan is not None and plan.events[0].site == "http"

    def test_empty_plans_resolve_to_none(self):
        assert resolve_plan('{"events": []}', environ={}) is None
        assert resolve_plan("", environ={}) is None

"""The ``lint`` CLI verb: selectors, formats, the 0/1/2 exit contract."""

import json

from repro.api.cli import main


class TestExitContract:
    def test_clean_circuit_exits_zero(self, capsys):
        assert main(["lint", "fig4"]) == 0
        assert "1 circuit(s)" in capsys.readouterr().out

    def test_unknown_circuit_exits_two(self, capsys):
        assert main(["lint", "no-such-circuit"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_findings_exit_one(self, tmp_path, capsys):
        package = tmp_path / "repro"
        package.mkdir()
        (package / "bad.py").write_text("import time\nt = time.time()\n")
        code = main(
            ["lint", "--src", "--src-root", str(tmp_path),
             "--tests-root", str(tmp_path)]
        )
        assert code == 1
        assert "DET001" in capsys.readouterr().out


class TestSelectors:
    def test_src_on_the_shipped_tree_is_clean(self, capsys):
        assert main(["lint", "--src"]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_circuits_sweep_is_clean(self, capsys):
        assert main(["lint", "--circuits"]) == 0
        assert "circuit(s)" in capsys.readouterr().out

    def test_json_format_parses(self, capsys):
        assert main(["lint", "fig4", "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["summary"]["exit_code"] == 0
        assert document["summary"]["circuits_checked"] == 1

    def test_rules_listing(self, capsys):
        assert main(["lint", "--rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("DET001", "FPR002", "LCK003", "ENG004",
                        "ART005", "CFG006", "NET101", "NET105"):
            assert rule_id in out

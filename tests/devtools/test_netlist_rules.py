"""Netlist rules: every registry circuit passes; seeded breakage fails."""

import pytest

from repro.api.registry import default_registry
from repro.devtools.lint import lint_circuit, lint_registry
from repro.digital.netlist import Circuit
from repro.spice import AnalogCircuit


def _rules_hit(report):
    return {f.rule for f in report.unsuppressed}


# ----------------------------------------------------------------------
class TestRegistrySweep:
    def test_every_registry_circuit_is_semantically_clean(self):
        report = lint_registry()
        assert report.unsuppressed == []
        assert report.circuits_checked == len(default_registry().specs())

    def test_named_subset(self):
        report = lint_registry(names=["fig4"])
        assert report.circuits_checked == 1
        assert report.unsuppressed == []

    def test_mixed_circuit_substrates_are_pathed(self):
        mixed = default_registry().get("fig4").build()
        report = lint_circuit(mixed, name="fig4")
        assert report.circuits_checked == 1
        assert report.unsuppressed == []


# ----------------------------------------------------------------------
# seeded-broken analog variants
# ----------------------------------------------------------------------
def _divider() -> AnalogCircuit:
    circuit = AnalogCircuit("divider")
    circuit.vsource("V1", "in", "0", ac=1.0)
    circuit.resistor("R1", "in", "out", 1e3)
    circuit.resistor("R2", "out", "0", 1e3)
    return circuit


class TestAnalogRules:
    def test_healthy_divider_is_clean(self):
        assert lint_circuit(_divider()).unsuppressed == []

    def test_net101_typoed_node_splits_the_net(self):
        circuit = AnalogCircuit("typo")
        circuit.vsource("V1", "in", "0", ac=1.0)
        circuit.resistor("R1", "in", "outt", 1e3)  # meant "out"
        circuit.resistor("R2", "out", "0", 1e3)
        report = lint_circuit(circuit)
        assert "NET101" in _rules_hit(report)
        messages = " ".join(f.message for f in report.unsuppressed)
        assert "'outt'" in messages

    def test_net102_capacitor_island_has_no_dc_path(self):
        circuit = AnalogCircuit("island")
        circuit.vsource("V1", "in", "0", ac=1.0)
        circuit.capacitor("C1", "in", "x", 1e-6)
        circuit.capacitor("C2", "x", "0", 1e-6)
        report = lint_circuit(circuit)
        assert _rules_hit(report) == {"NET102"}
        [finding] = report.unsuppressed
        assert "'x'" in finding.message

    def test_net102_inductor_conducts_dc(self):
        circuit = AnalogCircuit("rl")
        circuit.vsource("V1", "in", "0", ac=1.0)
        circuit.inductor("L1", "in", "out", 1e-3)
        circuit.resistor("R1", "out", "0", 1e3)
        assert lint_circuit(circuit).unsuppressed == []

    def test_net102_opamp_output_counts_as_pinned(self):
        # Inverting amplifier: the op-amp output node's only DC
        # neighbours are through the feedback resistor; the nullor
        # branch itself pins it.
        circuit = AnalogCircuit("inverting")
        circuit.vsource("V1", "in", "0", ac=1.0)
        circuit.resistor("Rin", "in", "sum", 1e3)
        circuit.resistor("Rf", "sum", "out", 1e4)
        circuit.opamp("U1", "0", "sum", "out")
        assert lint_circuit(circuit).unsuppressed == []


# ----------------------------------------------------------------------
# seeded-broken digital variants
# ----------------------------------------------------------------------
def _and2() -> Circuit:
    c = Circuit("and2")
    c.add_input("a")
    c.add_input("b")
    c.and_("y", "a", "b")
    c.add_output("y")
    return c


class TestDigitalRules:
    def test_healthy_and_gate_is_clean(self):
        assert lint_circuit(_and2()).unsuppressed == []

    def test_net103_dangling_fanin(self):
        c = Circuit("dangling")
        c.add_input("a")
        c.and_("y", "a", "ghost")
        c.add_output("y")
        report = lint_circuit(c)
        assert "NET103" in _rules_hit(report)
        messages = " ".join(f.message for f in report.unsuppressed)
        assert "'ghost'" in messages

    def test_net103_undriven_declared_output(self):
        c = _and2()
        c.outputs.append("phantom")
        report = lint_circuit(c)
        assert "NET103" in _rules_hit(report)

    def test_net104_dead_gate(self):
        c = _and2()
        c.or_("dead", "a", "b")  # feeds no output
        report = lint_circuit(c)
        assert _rules_hit(report) == {"NET104"}
        [finding] = report.unsuppressed
        assert "'dead'" in finding.message

    def test_net105_unused_input(self):
        c = _and2()
        c.add_input("unused")
        report = lint_circuit(c)
        assert _rules_hit(report) == {"NET105"}
        [finding] = report.unsuppressed
        assert "'unused'" in finding.message

    def test_passthrough_input_output_is_not_unused(self):
        c = Circuit("wire")
        c.add_input("a")
        c.add_output("a")
        assert lint_circuit(c).unsuppressed == []

    def test_registry_digital_blocks_have_no_dead_logic(self):
        for spec in default_registry().specs("digital"):
            report = lint_circuit(spec.build(), name=spec.name)
            assert report.unsuppressed == [], spec.name


# ----------------------------------------------------------------------
class TestPipelinePreflight:
    def test_preflight_attaches_diagnostics_and_timing(self):
        from repro.api.pipeline import Pipeline

        mixed = default_registry().get("fig4").build()
        outcome = Pipeline(("sensitivity",)).run(mixed, preflight=True)
        assert outcome.lint_diagnostics == {
            "findings": 0,
            "circuits_checked": 1,
            "details": [],
        }
        assert outcome.timings[0].stage == "preflight"

    def test_preflight_off_by_default(self):
        from repro.api.pipeline import Pipeline

        mixed = default_registry().get("fig4").build()
        outcome = Pipeline(("sensitivity",)).run(mixed)
        assert outcome.lint_diagnostics is None
        assert all(t.stage != "preflight" for t in outcome.timings)


class TestLintRegistryErrors:
    def test_unknown_circuit_raises(self):
        from repro.api.config import UnknownNameError

        with pytest.raises(UnknownNameError):
            lint_registry(names=["no-such-circuit"])

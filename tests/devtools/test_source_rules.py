"""Per-rule corpus: a known-bad snippet and a clean twin for each rule.

Each test pins the rule id and finding line, so a rule that drifts
(stops firing, or fires on its clean twin) fails here first.
"""

from repro.devtools.lint import Project, lint_source_text
from repro.devtools.lint.source_rules import (
    Art005ArtifactKind,
    Cch008DirectDigest,
    Cfg006ConfigTruthiness,
    Det001UnseededRandomness,
    Eng004UnknownEngineName,
    FingerprintContract,
    Fpr002FingerprintCompleteness,
    Lck003UnguardedMemoWrite,
    Res007SwallowedException,
    lint_project,
)


def _rules_hit(report):
    return {(f.rule, f.line) for f in report.unsuppressed}


# ----------------------------------------------------------------------
class TestDet001:
    def test_flags_global_random_and_wall_clock(self):
        report = lint_source_text(
            "import random\n"
            "import time\n"
            "x = random.random()\n"
            "t = time.time()\n",
            rules=[Det001UnseededRandomness()],
        )
        assert _rules_hit(report) == {("DET001", 3), ("DET001", 4)}

    def test_flags_unseeded_random_instance_and_numpy_global(self):
        report = lint_source_text(
            "import random\n"
            "import numpy as np\n"
            "rng = random.Random()\n"
            "y = np.random.rand(3)\n",
            rules=[Det001UnseededRandomness()],
        )
        assert _rules_hit(report) == {("DET001", 3), ("DET001", 4)}

    def test_flags_from_imports_and_datetime(self):
        report = lint_source_text(
            "from random import shuffle\n"
            "from time import time\n"
            "import datetime\n"
            "shuffle([1, 2])\n"
            "t = time()\n"
            "d = datetime.datetime.now()\n",
            rules=[Det001UnseededRandomness()],
        )
        assert _rules_hit(report) == {
            ("DET001", 4), ("DET001", 5), ("DET001", 6),
        }

    def test_clean_twin(self):
        report = lint_source_text(
            "import random\n"
            "import time\n"
            "import numpy as np\n"
            "rng = random.Random(7)\n"
            "x = rng.random()\n"
            "gen = np.random.default_rng(7)\n"
            "t0 = time.perf_counter()\n"
            "t1 = time.monotonic()\n",
            rules=[Det001UnseededRandomness()],
        )
        assert report.unsuppressed == []

    def test_suppression_comment(self):
        report = lint_source_text(
            "import time\n"
            "t = time.time()  # repro-lint: disable=DET001\n",
            rules=[Det001UnseededRandomness()],
        )
        assert report.unsuppressed == []
        assert [f.rule for f in report.suppressed] == ["DET001"]


# ----------------------------------------------------------------------
_FPR_CONFIG = (
    "class CampaignConfig:\n"
    "    seed: int = 0\n"
    "    engine: str = 'factorized'\n"
    "    max_workers: int | None = None\n"
)


def _fpr_project(fingerprint_body: str, excludes: str = "'max_workers'"):
    return Project(
        files={
            "repro/api/config.py": _FPR_CONFIG,
            "repro/core/sharding.py": (
                f"FINGERPRINT_EXCLUDED_FIELDS = frozenset({{{excludes}}})\n"
                "def campaign_fingerprint(circuit, config, faults, steps):\n"
                f"    return {fingerprint_body}\n"
            ),
        }
    )


class TestFpr002:
    def test_complete_fingerprint_is_clean(self):
        project = _fpr_project("(config.seed, config.engine)")
        report = lint_project(project, [Fpr002FingerprintCompleteness()])
        assert report.unsuppressed == []

    def test_missing_field_is_flagged(self):
        project = _fpr_project("(config.seed,)")
        report = lint_project(project, [Fpr002FingerprintCompleteness()])
        [finding] = report.unsuppressed
        assert finding.rule == "FPR002"
        assert "'engine'" in finding.message
        assert finding.path == "repro/core/sharding.py"
        assert finding.line == 2  # the campaign_fingerprint def line

    def test_stale_exclude_entry_is_flagged(self):
        project = _fpr_project(
            "(config.seed, config.engine)",
            excludes="'max_workers', 'bogus'",
        )
        report = lint_project(project, [Fpr002FingerprintCompleteness()])
        [finding] = report.unsuppressed
        assert "'bogus'" in finding.message
        assert "stale" in finding.message

    def test_contradicted_exclude_is_flagged(self):
        project = _fpr_project("(config.seed, config.engine, config.max_workers)")
        report = lint_project(project, [Fpr002FingerprintCompleteness()])
        [finding] = report.unsuppressed
        assert "'max_workers'" in finding.message
        assert "pick one" in finding.message

    def _implied_contract(self, implied):
        return FingerprintContract(
            config_module="repro/api/config.py",
            config_class="CampaignConfig",
            fingerprint_module="repro/core/sharding.py",
            function="campaign_fingerprint",
            exclude_module="repro/core/sharding.py",
            exclude_constant="FINGERPRINT_EXCLUDED_FIELDS",
            implied_fields=implied,
        )

    def test_implied_field_counts_as_classified(self):
        # `seed` is neither read nor excluded, but the contract declares
        # it implied (covered via another argument) — clean.
        project = _fpr_project("(config.engine,)")
        rule = Fpr002FingerprintCompleteness(
            [self._implied_contract(("seed",))]
        )
        report = lint_project(project, [rule])
        assert report.unsuppressed == []

    def test_implied_field_that_is_read_is_flagged(self):
        # Declaring a field implied *and* reading it means one of the
        # two statements is stale.
        project = _fpr_project("(config.seed, config.engine)")
        rule = Fpr002FingerprintCompleteness(
            [self._implied_contract(("seed",))]
        )
        report = lint_project(project, [rule])
        [finding] = report.unsuppressed
        assert "'seed'" in finding.message
        assert "implied" in finding.message


# ----------------------------------------------------------------------
class TestLck003:
    def test_unguarded_attr_write_is_flagged(self):
        report = lint_source_text(
            "import threading\n"
            "class Engine:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._memo = {}\n"
            "    def fast(self, key):\n"
            "        self._memo[key] = 1\n"
            "    def slow(self, key):\n"
            "        with self._lock:\n"
            "            self._memo[key] = 2\n",
            rules=[Lck003UnguardedMemoWrite()],
        )
        assert _rules_hit(report) == {("LCK003", 7)}

    def test_guarded_everywhere_is_clean(self):
        report = lint_source_text(
            "import threading\n"
            "class Engine:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._memo = {}\n"
            "    def fast(self, key):\n"
            "        with self._lock:\n"
            "            self._memo.setdefault(key, 1)\n",
            rules=[Lck003UnguardedMemoWrite()],
        )
        assert report.unsuppressed == []

    def test_init_construction_is_exempt(self):
        # __init__ publishes the memo before any thread exists.
        report = lint_source_text(
            "import threading\n"
            "class Engine:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._memo = {}\n"
            "        self._memo['warm'] = 0\n"
            "    def read(self, key):\n"
            "        with self._lock:\n"
            "            self._memo[key] = 1\n",
            rules=[Lck003UnguardedMemoWrite()],
        )
        assert report.unsuppressed == []

    def test_locked_suffix_convention_is_guarded(self):
        # ``*_locked`` methods document that the caller holds the lock
        # (the JobQueue._load_locked idiom).
        report = lint_source_text(
            "import threading\n"
            "class Queue:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.RLock()\n"
            "        self._jobs = {}\n"
            "    def load(self):\n"
            "        with self._lock:\n"
            "            self._load_locked()\n"
            "    def _load_locked(self):\n"
            "        self._jobs['a'] = 1\n"
            "    def put(self, job):\n"
            "        with self._lock:\n"
            "            self._jobs[job] = 2\n",
            rules=[Lck003UnguardedMemoWrite()],
        )
        assert report.unsuppressed == []

    def test_local_lock_flavour(self):
        report = lint_source_text(
            "import threading\n"
            "def run():\n"
            "    lock = threading.Lock()\n"
            "    memo = {}\n"
            "    def guarded():\n"
            "        with lock:\n"
            "            memo['k'] = 1\n"
            "    def racy():\n"
            "        memo['k'] = 2\n",
            rules=[Lck003UnguardedMemoWrite()],
        )
        assert _rules_hit(report) == {("LCK003", 9)}

    def test_unlocked_state_is_not_the_rules_business(self):
        # No lock in the class at all: plain single-threaded mutation.
        report = lint_source_text(
            "class Cache:\n"
            "    def __init__(self):\n"
            "        self._memo = {}\n"
            "    def put(self, key):\n"
            "        self._memo[key] = 1\n",
            rules=[Lck003UnguardedMemoWrite()],
        )
        assert report.unsuppressed == []


# ----------------------------------------------------------------------
_ENG_KNOWN = {
    "engine": frozenset({"factorized", "reference"}),
    "backend": frozenset({"auto", "dense", "sparse"}),
    "digital_engine": frozenset({"compiled", "reference"}),
}


class TestEng004:
    def test_typo_in_keyword_and_compare(self):
        report = lint_source_text(
            "run(engine='factorised')\n"
            "if config.backend == 'spare':\n"
            "    pass\n",
            rules=[Eng004UnknownEngineName(known=_ENG_KNOWN)],
        )
        assert _rules_hit(report) == {("ENG004", 1), ("ENG004", 2)}

    def test_membership_tuple_is_checked(self):
        report = lint_source_text(
            "ok = engine in ('factorized', 'refrence')\n",
            rules=[Eng004UnknownEngineName(known=_ENG_KNOWN)],
        )
        [finding] = report.unsuppressed
        assert "refrence" in finding.message

    def test_registered_names_are_clean(self):
        report = lint_source_text(
            "run(engine='factorized', backend='sparse')\n"
            "if config.digital_engine == 'compiled':\n"
            "    pass\n"
            "backend = 'auto'\n",
            rules=[Eng004UnknownEngineName(known=_ENG_KNOWN)],
        )
        assert report.unsuppressed == []

    def test_registries_extracted_from_config_module(self):
        project = Project(
            files={
                "repro/api/config.py": (
                    "CAMPAIGN_ENGINES = ('factorized', 'reference')\n"
                    "SIM_BACKENDS = ('auto', 'dense', 'sparse')\n"
                    "DIGITAL_ENGINES = ('compiled', 'reference')\n"
                ),
                "repro/use.py": "run(engine='factorised')\n",
            }
        )
        report = lint_project(project, [Eng004UnknownEngineName()])
        [finding] = report.unsuppressed
        assert finding.path == "repro/use.py"

    def test_no_registries_means_no_findings(self):
        # A partial project (corpus snippet) without config.py: silent.
        report = lint_source_text(
            "run(engine='anything-goes')\n",
            rules=[Eng004UnknownEngineName()],
        )
        assert report.unsuppressed == []


# ----------------------------------------------------------------------
class TestArt005:
    def test_unregistered_kind_is_flagged(self):
        report = lint_source_text(
            "a = Artifact(kind='mystery', circuit=None, payload={})\n",
            rules=[
                Art005ArtifactKind(
                    kinds=("report", "job"), require_test_coverage=False
                )
            ],
        )
        [finding] = report.unsuppressed
        assert finding.rule == "ART005"
        assert "mystery" in finding.message

    def test_registered_kind_and_foreign_kind_kwarg_are_clean(self):
        report = lint_source_text(
            "a = Artifact(kind='report', circuit=None, payload={})\n"
            "b = read_artifact(path, kind='job')\n"
            # Other APIs reuse the keyword name; not this rule's business.
            "registry.register('fig9', build, kind='mixed')\n",
            rules=[
                Art005ArtifactKind(
                    kinds=("report", "job"), require_test_coverage=False
                )
            ],
        )
        assert report.unsuppressed == []

    def test_uncovered_kind_needs_a_round_trip_test(self):
        project = Project(
            files={
                "repro/api/artifact.py": "ARTIFACT_KINDS = ('report', 'job')\n",
                "tests/test_artifact.py": "def test_report():\n    assert kind == 'report'\n",
            }
        )
        report = lint_project(project, [Art005ArtifactKind()])
        [finding] = report.unsuppressed
        assert "'job'" in finding.message
        assert finding.path == "repro/api/artifact.py"

    def test_covered_kinds_are_clean(self):
        project = Project(
            files={
                "repro/api/artifact.py": "ARTIFACT_KINDS = ('report', 'job')\n",
                "tests/test_artifact.py": "KINDS = ['report', 'job']\n",
            }
        )
        report = lint_project(project, [Art005ArtifactKind()])
        assert report.unsuppressed == []


# ----------------------------------------------------------------------
class TestCfg006:
    def test_or_chain_on_numeric_field_is_flagged(self):
        report = lint_source_text(
            "workers = config.max_workers or 4\n",
            rules=[Cfg006ConfigTruthiness(fields=("max_workers", "seed"))],
        )
        [finding] = report.unsuppressed
        assert finding.rule == "CFG006"
        assert finding.line == 1
        assert "max_workers" in finding.message

    def test_is_none_twin_is_clean(self):
        report = lint_source_text(
            "workers = 4 if config.max_workers is None else config.max_workers\n"
            "label = name or 'anonymous'\n",
            rules=[Cfg006ConfigTruthiness(fields=("max_workers", "seed"))],
        )
        assert report.unsuppressed == []

    def test_fields_derived_from_config_annotations(self):
        project = Project(
            files={
                "repro/api/config.py": (
                    "class CampaignConfig:\n"
                    "    seed: int = 0\n"
                    "    batch: bool = True\n"
                    "    severity_range: tuple = (0.5, 2.0)\n"
                ),
                "repro/use.py": (
                    "s = config.seed or 1\n"
                    "b = config.batch or True\n"
                    "r = config.severity_range or ()\n"
                ),
            }
        )
        report = lint_project(project, [Cfg006ConfigTruthiness()])
        # Only the int field is risky: bools and containers are fine.
        assert _rules_hit(report) == {("CFG006", 1)}


# ----------------------------------------------------------------------
class TestRes007:
    def test_silent_broad_except_is_flagged(self):
        report = lint_source_text(
            "try:\n"
            "    run()\n"
            "except Exception:\n"
            "    pass\n",
            path="repro/core/x.py",
            rules=[Res007SwallowedException()],
        )
        assert _rules_hit(report) == {("RES007", 3)}

    def test_bare_except_and_tuple_are_flagged(self):
        report = lint_source_text(
            "try:\n"
            "    run()\n"
            "except:\n"
            "    count += 1\n"
            "try:\n"
            "    run()\n"
            "except (Exception, OSError):\n"
            "    count += 1\n",
            path="repro/service/x.py",
            rules=[Res007SwallowedException()],
        )
        assert _rules_hit(report) == {("RES007", 3), ("RES007", 7)}

    def test_reraise_twin_is_clean(self):
        report = lint_source_text(
            "try:\n"
            "    run()\n"
            "except Exception:\n"
            "    cleanup()\n"
            "    raise\n",
            path="repro/core/x.py",
            rules=[Res007SwallowedException()],
        )
        assert report.unsuppressed == []

    def test_failure_record_twin_is_clean(self):
        report = lint_source_text(
            "try:\n"
            "    run()\n"
            "except Exception as error:\n"
            "    records.append(FailureRecord.from_exception('job', error))\n",
            path="repro/service/x.py",
            rules=[Res007SwallowedException()],
        )
        assert report.unsuppressed == []

    def test_using_the_caught_exception_is_clean(self):
        # Passing the exception anywhere (a log line, a result row)
        # counts as preserving the evidence.
        report = lint_source_text(
            "try:\n"
            "    run()\n"
            "except Exception as error:\n"
            "    log(f'failed: {error}')\n",
            path="repro/core/x.py",
            rules=[Res007SwallowedException()],
        )
        assert report.unsuppressed == []

    def test_narrow_except_is_out_of_scope(self):
        report = lint_source_text(
            "try:\n"
            "    run()\n"
            "except KeyError:\n"
            "    pass\n",
            path="repro/core/x.py",
            rules=[Res007SwallowedException()],
        )
        assert report.unsuppressed == []

    def test_only_core_and_service_are_in_scope(self):
        snippet = "try:\n    run()\nexcept Exception:\n    pass\n"
        for path in ("repro/experiments/x.py", "repro/devtools/x.py"):
            report = lint_source_text(
                snippet, path=path, rules=[Res007SwallowedException()]
            )
            assert report.unsuppressed == []

    def test_suppression_comment(self):
        report = lint_source_text(
            "try:\n"
            "    run()\n"
            "except Exception:  # repro-lint: disable=RES007\n"
            "    pass\n",
            path="repro/core/x.py",
            rules=[Res007SwallowedException()],
        )
        assert report.unsuppressed == []
        assert len(report.suppressed) == 1


# ----------------------------------------------------------------------
class TestCch008:
    def test_direct_hashlib_call_is_flagged(self):
        report = lint_source_text(
            "import hashlib\n"
            "digest = hashlib.sha256(b'x').hexdigest()\n",
            path="repro/service/store.py",
            rules=[Cch008DirectDigest()],
        )
        assert _rules_hit(report) == {("CCH008", 2)}

    def test_from_import_alias_is_flagged(self):
        report = lint_source_text(
            "from hashlib import sha256 as mk\n"
            "digest = mk(b'x').hexdigest()\n",
            path="repro/core/sharding.py",
            rules=[Cch008DirectDigest()],
        )
        assert _rules_hit(report) == {("CCH008", 2)}

    def test_fingerprint_module_is_exempt(self):
        report = lint_source_text(
            "import hashlib\n"
            "digest = hashlib.sha256(b'x').hexdigest()\n",
            path="repro/core/fingerprint.py",
            rules=[Cch008DirectDigest()],
        )
        assert report.unsuppressed == []

    def test_routed_digest_is_clean(self):
        report = lint_source_text(
            "from repro.core.fingerprint import fingerprint_of\n"
            "digest = fingerprint_of({'kind': 'x'})\n",
            path="repro/service/store.py",
            rules=[Cch008DirectDigest()],
        )
        assert report.unsuppressed == []


# ----------------------------------------------------------------------
class TestRepoTreeIsClean:
    def test_src_lints_clean(self):
        # The CI gate, as a test: the shipped tree has zero unsuppressed
        # findings (intentional deviations carry inline suppressions).
        from pathlib import Path

        import repro

        from repro.devtools.lint import lint_source_tree

        src_root = Path(repro.__file__).resolve().parents[1]
        tests_root = src_root.parent / "tests"
        report = lint_source_tree(
            src_root, tests_root=tests_root if tests_root.is_dir() else None
        )
        assert report.unsuppressed == []
        assert report.files_checked > 50

"""Engine mechanics: suppressions, projects, reports, exit codes."""

import json

import pytest

from repro.devtools.lint import LintError, LintReport, Project
from repro.devtools.lint.engine import Finding, suppressions_of


class TestSuppressions:
    def test_same_line_comment_covers_only_its_line(self):
        text = "x = 1  # repro-lint: disable=DET001\n"
        assert suppressions_of(text) == {1: {"DET001"}}

    def test_standalone_comment_covers_next_line(self):
        text = "# repro-lint: disable=LCK003\nx = 1\ny = 2\n"
        suppressed = suppressions_of(text)
        assert suppressed[1] == {"LCK003"}
        assert suppressed[2] == {"LCK003"}
        assert 3 not in suppressed

    def test_multiple_rules_and_all(self):
        text = "a = 1  # repro-lint: disable=DET001,CFG006\nb = 2  # repro-lint: disable=all\n"
        suppressed = suppressions_of(text)
        assert suppressed[1] == {"DET001", "CFG006"}
        assert "all" in suppressed[2]

    def test_plain_comments_do_not_suppress(self):
        assert suppressions_of("x = 1  # a normal comment\n") == {}


class TestProject:
    def test_requires_exactly_one_source(self):
        with pytest.raises(LintError):
            Project()
        with pytest.raises(LintError):
            Project(src_root="src", files={"a.py": ""})

    def test_in_memory_files(self):
        project = Project(files={"pkg/a.py": "x = 1\n", "pkg/b.txt": "no"})
        assert project.paths() == ["pkg/a.py"]
        assert project.module("pkg/a.py") is not None
        assert project.module("missing.py") is None

    def test_syntax_error_is_a_lint_error(self):
        project = Project(files={"bad.py": "def broken(:\n"})
        with pytest.raises(LintError, match="bad.py"):
            project.module("bad.py")

    def test_tuple_constant_extraction(self):
        project = Project(
            files={
                "m.py": 'KINDS = ("a", "b")\nSET = frozenset({"c"})\n',
            }
        )
        assert project.tuple_constant("m.py", "KINDS") == ("a", "b")
        assert project.tuple_constant("m.py", "SET") == ("c",)
        assert project.tuple_constant("m.py", "MISSING") == ()


class TestLintReport:
    def _finding(self, suppressed=False):
        return Finding(
            rule="DET001", message="m", path="p.py", line=3,
            suppressed=suppressed,
        )

    def test_exit_codes(self):
        assert LintReport().exit_code == 0
        assert LintReport(findings=[self._finding(True)]).exit_code == 0
        assert LintReport(findings=[self._finding()]).exit_code == 1

    def test_render_text_has_location_and_summary(self):
        report = LintReport(findings=[self._finding()], files_checked=2)
        text = report.render_text()
        assert "p.py:3" in text
        assert "[DET001]" in text
        assert "1 finding(s), 0 suppressed" in text

    def test_render_json_round_trips(self):
        report = LintReport(
            findings=[self._finding(), self._finding(True)],
            files_checked=1,
            circuits_checked=4,
        )
        document = json.loads(report.render_json())
        assert document["summary"]["unsuppressed"] == 1
        assert document["summary"]["suppressed"] == 1
        assert document["summary"]["circuits_checked"] == 4
        assert document["summary"]["exit_code"] == 1
        assert document["findings"][0]["rule"] == "DET001"

    def test_extend_folds_counts(self):
        a = LintReport(findings=[self._finding()], files_checked=1)
        b = LintReport(circuits_checked=2)
        a.extend(b)
        assert a.files_checked == 1
        assert a.circuits_checked == 2
        assert len(a.findings) == 1

"""Tests for performance-parameter measurements."""

import math

import pytest

from repro.circuits import bandpass_filter
from repro.spice import (
    AnalogCircuit,
    AnalogError,
    bandwidth,
    center_frequency,
    cutoff_high,
    cutoff_low,
    dc_gain,
    gain_at,
    peak_gain,
)


def rc_low_pass() -> AnalogCircuit:
    circuit = AnalogCircuit("rc")
    circuit.vsource("V1", "in", "0", ac=1.0)
    circuit.resistor("R1", "in", "out", 1591.55)  # fc = 100 Hz with 1 uF
    circuit.capacitor("C1", "out", "0", 1e-6)
    return circuit


class TestGains:
    def test_dc_gain_of_divider(self):
        c = AnalogCircuit("div")
        c.vsource("V1", "in", "0")
        c.resistor("R1", "in", "out", 1000.0)
        c.resistor("R2", "out", "0", 1000.0)
        assert dc_gain(c, "V1", "out") == pytest.approx(0.5)

    def test_gain_at_corner(self):
        c = rc_low_pass()
        assert gain_at(c, "V1", "out", 100.0) == pytest.approx(
            1 / math.sqrt(2), rel=1e-3
        )


class TestCutoffs:
    def test_low_pass_high_cutoff(self):
        c = rc_low_pass()
        assert cutoff_high(c, "V1", "out", 1.0, 1e5) == pytest.approx(
            100.0, rel=1e-3
        )

    def test_low_pass_has_no_low_cutoff(self):
        c = rc_low_pass()
        with pytest.raises(AnalogError):
            cutoff_low(c, "V1", "out", 1.0, 1e5)

    def test_band_pass_cutoffs_bracket_center(self):
        c = bandpass_filter()
        f_low = cutoff_low(c, "Vin", "V1", 50.0, 2e5)
        f_high = cutoff_high(c, "Vin", "V1", 50.0, 2e5)
        f_center = center_frequency(c, "Vin", "V1", 50.0, 2e5)
        assert f_low < f_center < f_high

    def test_bandwidth_matches_design_q(self):
        # Tow-Thomas design: f0 = 2.5 kHz, Q = 2 -> BW = 1.25 kHz.
        c = bandpass_filter()
        assert bandwidth(c, "Vin", "V1", 50.0, 2e5) == pytest.approx(
            1250.0, rel=0.02
        )

    def test_reference_override(self):
        c = rc_low_pass()
        f = cutoff_high(c, "V1", "out", 1.0, 1e5, reference=0.5)
        # |H| = 0.5/sqrt(2) happens above the -3 dB point.
        assert f > 100.0


class TestPeak:
    def test_peak_of_band_pass(self):
        c = bandpass_filter()
        f_peak, magnitude = peak_gain(c, "Vin", "V1", 50.0, 2e5)
        assert f_peak == pytest.approx(2500.0, rel=0.01)
        assert magnitude == pytest.approx(2.0, rel=0.01)

    def test_bad_window_rejected(self):
        c = bandpass_filter()
        with pytest.raises(AnalogError):
            peak_gain(c, "Vin", "V1", 0.0, 1e5)

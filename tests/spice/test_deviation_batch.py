"""Differential suite: ``deviation_batch`` against the per-fault path.

:meth:`repro.spice.FactorizedMna.deviation_batch` executes the campaign's
Sherman–Morrison updates as one multi-RHS solve plus vectorized numpy
expressions; :meth:`~repro.spice.FactorizedMna.deviated_voltage` is the
scalar per-fault path it replaces.  Both must agree to 1e-12 on every
circuit — with rank-≥2/dense-fallback faults deliberately mixed into the
batch — because the campaign engine's byte-identical-outcomes guarantee
rests on this equivalence.

The fast tests cover the small named filters plus a hypothesis sweep of
random ladders; the full registry grid (512-section ladders, dense *and*
sparse backends) is marked ``slow`` and runs next to the backend
differential suite.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import default_registry
from repro.circuits import bandpass_filter, chebyshev_filter, rc_ladder
from repro.spice import AnalogCircuit, AnalogError, MnaSolver, VoltageSource

#: |batch − per-fault| bound; the vectorized path mirrors the scalar
#: path's term order, so in practice the two agree bit for bit.
TOLERANCE = 1e-12


def _drive(circuit) -> None:
    for component in circuit.components:
        if isinstance(component, VoltageSource):
            component.ac, component.dc = 1.0, 1.0
            return
    raise AssertionError(f"no source in {circuit.name}")


def _observed_node(circuit) -> str:
    return sorted(node for node in circuit.nodes() if node != "0")[-1]


def _population(circuit, deviations=(-0.5, -0.05, 0.25, 2.0)):
    return [
        (element, deviation)
        for element in circuit.element_names()
        for deviation in deviations
    ]


def _assert_batch_matches_scalar(circuit, frequency, backend="dense"):
    _drive(circuit)
    node = _observed_node(circuit)
    faults = _population(circuit)
    batch = MnaSolver(circuit, backend=backend).factorized(frequency)
    scalar = MnaSolver(circuit, backend=backend).factorized(frequency)
    voltages = batch.deviation_batch(faults, node)
    assert voltages.shape == (len(faults),)
    for (element, deviation), voltage in zip(faults, voltages):
        expected = scalar.deviated_voltage(element, deviation, node)
        assert voltage == pytest.approx(expected, rel=TOLERANCE, abs=TOLERANCE)


class TestSmallCircuits:
    CIRCUITS = {
        "bandpass": bandpass_filter,
        "chebyshev": chebyshev_filter,
        "rc-ladder-16": lambda: rc_ladder(16),
    }

    @pytest.mark.parametrize("backend", ["dense", "sparse"])
    @pytest.mark.parametrize("name", sorted(CIRCUITS))
    @pytest.mark.parametrize("frequency", [0.0, 2.5e3])
    def test_batch_matches_per_fault(self, name, frequency, backend):
        _assert_batch_matches_scalar(
            self.CIRCUITS[name](), frequency, backend
        )

    def test_batch_result_is_bit_identical_on_shared_instance(self):
        # On one factorization the batch seeds the per-direction y
        # cache, so the subsequent scalar walk replays the exact same
        # floating-point operations: equality, not approximation.
        circuit = bandpass_filter()
        _drive(circuit)
        node = _observed_node(circuit)
        faults = _population(circuit)
        factorized = MnaSolver(circuit).factorized(2.5e3)
        voltages = factorized.deviation_batch(faults, node)
        for (element, deviation), voltage in zip(faults, voltages):
            assert voltage == factorized.deviated_voltage(
                element, deviation, node
            )


class TestBatchSemantics:
    def _factorized(self, frequency=1.0e3):
        circuit = bandpass_filter()
        _drive(circuit)
        return circuit, MnaSolver(circuit).factorized(frequency)

    def test_empty_batch(self):
        circuit, factorized = self._factorized()
        voltages = factorized.deviation_batch([], _observed_node(circuit))
        assert voltages.shape == (0,) and voltages.dtype == complex

    def test_ground_node_is_zero(self):
        circuit, factorized = self._factorized()
        element = circuit.element_names()[0]
        voltages = factorized.deviation_batch([(element, 0.5)], "0")
        assert voltages[0] == 0.0 + 0.0j

    def test_unknown_node_rejected(self):
        circuit, factorized = self._factorized()
        element = circuit.element_names()[0]
        with pytest.raises(AnalogError, match="no node named"):
            factorized.deviation_batch([(element, 0.5)], "nope")

    def test_baseline_equal_stamp_returns_base_voltage(self):
        # A capacitor at DC stamps nothing: the batch must return the
        # baseline voltage exactly, mirroring deviated_voltage.
        circuit = AnalogCircuit("rc")
        circuit.vsource("Vin", "in", "0", dc=1.0, ac=1.0)
        circuit.resistor("R1", "in", "out", 1000.0)
        circuit.capacitor("C1", "out", "0", 1e-9)
        factorized = MnaSolver(circuit).factorized(0.0)
        voltages = factorized.deviation_batch([("C1", 0.5), ("R1", 0.5)], "out")
        assert voltages[0] == factorized.solution().voltage("out")
        assert voltages[1] != voltages[0]

    def test_one_multi_rhs_solve_and_cache_seeding(self):
        circuit, factorized = self._factorized()
        node = _observed_node(circuit)
        faults = _population(circuit)
        factorized.deviation_batch(faults, node)
        stats = factorized.solve_stats()
        assert stats["multi_rhs_solves"] == 1
        assert stats["multi_rhs_columns"] >= 1
        single_before = stats["solve_calls"]
        # The batch seeded the per-direction cache: a scalar walk over
        # the same population triggers no further triangular solves for
        # fixed (value-independent) update directions.
        for element, deviation in faults:
            factorized.deviated_voltage(element, deviation, node)
        after = factorized.solve_stats()
        assert after["multi_rhs_solves"] == 1
        assert after["solve_calls"] <= single_before + sum(
            1 for _ in circuit.element_names()
        )

    def test_dense_fallback_faults_mixed_into_batch(self, monkeypatch):
        # Defeat rank-one factoring for every other classified fault:
        # those must route through the per-fault dense patched solve
        # *inside* the batch and still agree with the scalar path.
        circuit, factorized = self._factorized(2.5e3)
        node = _observed_node(circuit)
        faults = _population(circuit)
        reference = MnaSolver(circuit).factorized(2.5e3)

        calls = {"n": 0}
        original_factor = type(factorized)._factor_delta

        def flaky_factor(self, entries):
            calls["n"] += 1
            if calls["n"] % 2 == 0:
                return None
            return original_factor(self, entries)

        monkeypatch.setattr(factorized, "_factor_delta", flaky_factor.__get__(factorized))
        monkeypatch.setattr(
            factorized, "_factor_delta_svd", lambda entries: None
        )
        voltages = factorized.deviation_batch(faults, node)
        assert calls["n"] >= 2  # the patch actually mixed routes
        for (element, deviation), voltage in zip(faults, voltages):
            expected = reference.deviated_voltage(element, deviation, node)
            assert voltage == pytest.approx(
                expected, rel=TOLERANCE, abs=TOLERANCE
            )

    def test_rhs_stamping_component_rejected(self):
        circuit, factorized = self._factorized()
        element = circuit.element_names()[0]

        def fake_stamp(el, deviation):
            return {}, True  # pretend the component re-stamped the RHS

        factorized._stamp_delta = fake_stamp
        with pytest.raises(AnalogError, match="right-hand side"):
            factorized.deviation_batch([(element, 0.5)], _observed_node(circuit))


def _random_ladder(rng: random.Random, stages: int) -> AnalogCircuit:
    circuit = AnalogCircuit(f"hyp-ladder-{stages}")
    circuit.vsource("Vin", "n0", "0", dc=1.0, ac=1.0)
    previous = "n0"
    for index in range(stages):
        node = f"n{index + 1}"
        circuit.resistor(
            f"Rs{index}", previous, node, 10.0 ** rng.uniform(2.0, 5.0)
        )
        if rng.random() < 0.8:
            circuit.capacitor(
                f"C{index}", node, "0", 10.0 ** rng.uniform(-9.0, -7.0)
            )
        if rng.random() < 0.5:
            circuit.resistor(
                f"Rp{index}", node, "0", 10.0 ** rng.uniform(3.0, 6.0)
            )
        previous = node
    return circuit


class TestRandomLadderProperty:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        stages=st.integers(min_value=1, max_value=12),
        frequency=st.sampled_from([0.0, 1.0e3, 5.0e4]),
    )
    def test_batch_matches_per_fault(self, seed, stages, frequency):
        rng = random.Random(seed)
        circuit = _random_ladder(rng, stages)
        node = f"n{stages}"
        faults = _population(circuit, deviations=(-0.6, 0.3))
        batch = MnaSolver(circuit).factorized(frequency)
        scalar = MnaSolver(circuit).factorized(frequency)
        voltages = batch.deviation_batch(faults, node)
        for (element, deviation), voltage in zip(faults, voltages):
            expected = scalar.deviated_voltage(element, deviation, node)
            assert voltage == pytest.approx(
                expected, rel=TOLERANCE, abs=TOLERANCE
            )


@pytest.mark.slow
class TestRegistryGrid:
    """Every registry analog circuit, dense and sparse, batch == scalar."""

    NAMES = [spec.name for spec in default_registry().specs("analog")]

    @pytest.mark.parametrize("backend", ["dense", "sparse"])
    @pytest.mark.parametrize("name", NAMES)
    def test_batch_matches_per_fault(self, name, backend):
        registry = default_registry()
        circuit = registry.build(name)
        _drive(circuit)
        node = _observed_node(circuit)
        elements = circuit.element_names()
        if len(elements) > 96:
            # Deterministic subsample keeps the 512-section ladders
            # tractable while still batching ~200 distinct directions.
            elements = elements[:: max(1, len(elements) // 96)]
        faults = [
            (element, deviation)
            for element in elements
            for deviation in (-0.5, 0.25)
        ]
        batch = MnaSolver(circuit, backend=backend).factorized(1.0e3)
        scalar = MnaSolver(circuit, backend=backend).factorized(1.0e3)
        voltages = batch.deviation_batch(faults, node)
        for (element, deviation), voltage in zip(faults, voltages):
            expected = scalar.deviated_voltage(element, deviation, node)
            assert voltage == pytest.approx(
                expected, rel=TOLERANCE, abs=TOLERANCE
            )

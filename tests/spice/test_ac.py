"""Tests for AC sweeps and transfer utilities against analytic filters."""

import cmath
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spice import (
    AnalogCircuit,
    AnalogError,
    FrequencyResponse,
    log_frequencies,
    sweep,
    transfer,
)


def rc_low_pass(r: float = 1000.0, c: float = 1e-6) -> AnalogCircuit:
    circuit = AnalogCircuit("rc")
    circuit.vsource("V1", "in", "0", ac=1.0)
    circuit.resistor("R1", "in", "out", r)
    circuit.capacitor("C1", "out", "0", c)
    return circuit


class TestTransfer:
    @given(st.floats(min_value=1.0, max_value=1e6))
    @settings(max_examples=40, deadline=None)
    def test_rc_matches_analytic(self, frequency):
        circuit = rc_low_pass()
        measured = transfer(circuit, "V1", "out", frequency)
        s = 2j * math.pi * frequency
        analytic = 1.0 / (1.0 + s * 1000.0 * 1e-6)
        assert cmath.isclose(measured, analytic, rel_tol=1e-6)

    def test_transfer_restores_source_amplitude(self):
        circuit = rc_low_pass()
        source = circuit.component("V1")
        source.ac = 3.0
        transfer(circuit, "V1", "out", 100.0)
        assert source.ac == 3.0

    def test_non_source_rejected(self):
        circuit = rc_low_pass()
        with pytest.raises(AnalogError):
            transfer(circuit, "R1", "out", 100.0)


class TestSweep:
    def test_sweep_shape(self):
        circuit = rc_low_pass()
        grid = [10.0, 100.0, 1000.0]
        response = sweep(circuit, "V1", "out", grid)
        assert response.frequencies_hz == grid
        assert len(response.transfer_values) == 3

    def test_magnitudes_monotone_for_low_pass(self):
        circuit = rc_low_pass()
        response = sweep(
            circuit, "V1", "out", log_frequencies(1.0, 1e5, 10)
        )
        mags = response.magnitudes()
        assert all(a >= b - 1e-12 for a, b in zip(mags, mags[1:]))

    def test_peak_and_at(self):
        response = FrequencyResponse(
            [1.0, 10.0, 100.0], [0.5 + 0j, 2.0 + 0j, 1.0 + 0j]
        )
        f_peak, magnitude = response.peak()
        assert f_peak == 10.0 and magnitude == 2.0
        assert response.at(9.0) == 2.0 + 0j

    def test_magnitudes_db(self):
        response = FrequencyResponse([1.0], [10.0 + 0j])
        assert response.magnitudes_db()[0] == pytest.approx(20.0)


class TestLogFrequencies:
    def test_endpoints_included(self):
        grid = log_frequencies(1.0, 1000.0, 10)
        assert grid[0] == pytest.approx(1.0)
        assert grid[-1] == pytest.approx(1000.0)

    def test_bad_range_rejected(self):
        with pytest.raises(AnalogError):
            log_frequencies(0.0, 100.0)
        with pytest.raises(AnalogError):
            log_frequencies(100.0, 10.0)

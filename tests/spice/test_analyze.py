"""Tests of the analyze() front door and its request/result types."""

import numpy as np
import pytest

from repro.circuits import bandpass_filter
from repro.spice import (
    AcSweep,
    AnalogCircuit,
    AnalogError,
    DcOp,
    FrequencyResponse,
    TransientRun,
    TransientSolver,
    analyze,
    sine,
    sweep,
)


def divider():
    circuit = AnalogCircuit("divider")
    circuit.vsource("V1", "in", "0", dc=10.0, ac=1.0)
    circuit.resistor("R1", "in", "mid", 1000.0)
    circuit.resistor("R2", "mid", "0", 3000.0)
    return circuit


def rc_circuit():
    circuit = AnalogCircuit("rc")
    circuit.vsource("V1", "in", "0", dc=0.0)
    circuit.resistor("R1", "in", "out", 1000.0)
    circuit.capacitor("C1", "out", "0", 1e-6)
    return circuit


class TestDcOp:
    @pytest.mark.parametrize("backend", ["auto", "dense", "sparse"])
    def test_operating_point(self, backend):
        result = analyze(divider(), DcOp(), backend=backend)
        assert result.voltage("mid").real == pytest.approx(7.5)

    def test_diagnostics_name_the_backend(self):
        result = analyze(divider(), DcOp(), backend="sparse")
        diag = result.diagnostics
        assert diag.backend == "sparse"
        assert diag.n_nodes == 2 and diag.n_unknowns == 3
        assert diag.cache_misses == 1 and diag.elapsed_s >= 0.0

    def test_auto_is_dense_for_small_circuits(self):
        assert analyze(divider(), DcOp()).diagnostics.backend == "dense"


class TestAcSweepRequest:
    def test_transfer_sweep_matches_classic_sweep(self):
        from repro.circuits import BANDPASS_OUTPUT, BANDPASS_SOURCE

        circuit = bandpass_filter()
        frequencies = (1.0e3, 2.5e3, 5.0e3)
        result = analyze(
            circuit,
            AcSweep(frequencies, source=BANDPASS_SOURCE, output=BANDPASS_OUTPUT),
        )
        classic = sweep(
            circuit, BANDPASS_SOURCE, BANDPASS_OUTPUT, list(frequencies)
        )
        assert isinstance(result.response, FrequencyResponse)
        for ours, theirs in zip(
            result.response.transfer_values, classic.transfer_values
        ):
            assert ours == pytest.approx(theirs, abs=1e-12)

    def test_as_built_sweep_has_no_response(self):
        result = analyze(divider(), AcSweep((100.0, 200.0)))
        assert result.response is None
        assert len(result.solutions) == 2
        assert result.magnitude("mid")[0] == pytest.approx(0.75)

    def test_log_constructor(self):
        request = AcSweep.log(10.0, 1.0e4, 5, source="V1", output="mid")
        assert request.frequencies_hz[0] == pytest.approx(10.0)
        assert request.frequencies_hz[-1] == pytest.approx(1.0e4)

    def test_repeated_frequencies_hit_the_cache(self):
        result = analyze(
            divider(),
            AcSweep((100.0, 100.0, 200.0), source="V1", output="mid"),
        )
        assert result.diagnostics.cache_hits == 1
        assert result.diagnostics.cache_misses == 2

    def test_validation(self):
        with pytest.raises(AnalogError, match="at least one"):
            AcSweep(())
        with pytest.raises(AnalogError, match=">= 0"):
            AcSweep((-1.0,))
        with pytest.raises(AnalogError, match="both source and output"):
            AcSweep((100.0,), source="V1")

    def test_unit_source_is_restored(self):
        circuit = divider()
        source = circuit.component("V1")
        analyze(circuit, AcSweep((100.0,), source="V1", output="mid"))
        assert source.ac == 1.0 and source.dc == 10.0


class TestTransientRequest:
    def test_matches_classic_transient_solver(self):
        waves = {"V1": sine(1.0, 500.0)}
        result = analyze(
            rc_circuit(), TransientRun(t_stop=2e-3, dt=1e-5, sources=waves)
        )
        classic = TransientSolver(rc_circuit()).run(2e-3, 1e-5, waves)
        assert np.max(
            np.abs(result.waveform("out") - classic.waveform("out"))
        ) < 1e-12
        assert result.diagnostics.backend == "dense"

    def test_delegated_measurements(self):
        result = analyze(
            rc_circuit(),
            TransientRun(
                t_stop=4e-3, dt=1e-5, sources={"V1": sine(1.0, 500.0)}
            ),
        )
        assert 0.0 < result.amplitude("out") < 1.0
        assert 0.0 <= result.duty_above("out", 0.0) <= 1.0
        assert len(result.times) == 400


class TestFrontDoorErrors:
    def test_unknown_request_type(self):
        with pytest.raises(AnalogError, match="unknown analysis request"):
            analyze(divider(), object())

    def test_waveform_error_lists_available_nodes(self):
        result = analyze(
            rc_circuit(), TransientRun(t_stop=1e-3, dt=1e-5)
        )
        with pytest.raises(AnalogError, match="available nodes: in, out"):
            result.waveform("ghost")

    def test_frequency_response_at_outside_range(self):
        response = FrequencyResponse(
            [10.0, 100.0], [1.0 + 0j, 0.5 + 0j]
        )
        with pytest.raises(AnalogError, match="outside the swept range"):
            response.at(1.0e4)
        with pytest.raises(AnalogError, match="outside the swept range"):
            response.at(1.0)
        assert response.at(99.0) == 0.5 + 0j

    def test_factor_cache_size_threads_through(self):
        result = analyze(
            divider(),
            AcSweep(
                (1.0e2, 2.0e2, 3.0e2), source="V1", output="mid"
            ),
            factor_cache_size=2,
        )
        assert result.diagnostics.cache_misses == 3

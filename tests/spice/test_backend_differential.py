"""Backend differential suite: dense vs sparse on every registry circuit.

For every analog circuit in the default registry (including the analog
blocks of the mixed assemblies), the dense and sparse linear-system
backends must agree to 1e-9 on

* the DC operating point,
* an AC transfer sweep across five decades,
* a backward-Euler transient run,

and the fig4 fault campaign must produce the *identical* seeded outcome
list under ``backend="sparse"`` as under the dense reference oracle.

Marked ``slow``: the grid covers 500-node ladders; it runs in the slow
CI job next to the engine differential suite.
"""

import numpy as np
import pytest

from repro.api import CampaignConfig, Workbench, default_registry
from repro.core import run_campaign
from repro.spice import (
    AcSweep,
    DcOp,
    TransientRun,
    VoltageSource,
    analyze,
    log_frequencies,
    sine,
)

pytestmark = pytest.mark.slow

#: |dense − sparse| bound on every compared sample.
TOLERANCE = 1e-9


def _analog_circuits():
    """Every analog network the registry knows: stand-alone filters,
    parametric ladders, and the analog blocks of mixed assemblies."""
    registry = default_registry()
    for spec in registry.specs("analog"):
        yield spec.name, registry.build(spec.name)
    for name in ("fig4",):
        yield f"{name}.analog", registry.build(name).analog


def _first_vsource(circuit) -> str | None:
    for component in circuit.components:
        if isinstance(component, VoltageSource):
            return component.name
    return None


CIRCUITS = dict(_analog_circuits())


@pytest.mark.parametrize("name", sorted(CIRCUITS))
class TestBackendsAgree:
    def test_dc_operating_point(self, name):
        circuit = CIRCUITS[name]
        dense = analyze(circuit, DcOp(), backend="dense")
        sparse = analyze(circuit, DcOp(), backend="sparse")
        for node in dense.solution.nodes():
            assert abs(
                dense.voltage(node) - sparse.voltage(node)
            ) < TOLERANCE, f"{name}: DC mismatch at node {node}"

    def test_ac_sweep(self, name):
        circuit = CIRCUITS[name]
        request = AcSweep(tuple(log_frequencies(10.0, 1.0e6, 3)))
        dense = analyze(circuit, request, backend="dense")
        sparse = analyze(circuit, request, backend="sparse")
        for f, dsol, ssol in zip(
            request.frequencies_hz, dense.solutions, sparse.solutions
        ):
            for node in dsol.nodes():
                assert abs(
                    dsol.voltage(node) - ssol.voltage(node)
                ) < TOLERANCE, f"{name}: AC mismatch at {node} @ {f} Hz"

    def test_transient_run(self, name):
        circuit = CIRCUITS[name]
        source = _first_vsource(circuit)
        waves = {source: sine(1.0, 2.0e3)} if source else None
        request = TransientRun(t_stop=2e-4, dt=2e-6, sources=waves)
        dense = analyze(circuit, request, backend="dense")
        sparse = analyze(circuit, request, backend="sparse")
        for node in dense.waveforms.voltages:
            difference = np.max(
                np.abs(dense.waveform(node) - sparse.waveform(node))
            )
            assert difference < TOLERANCE, (
                f"{name}: transient mismatch at {node} ({difference})"
            )


class TestCampaignBackendEquality:
    def test_fig4_sparse_campaign_matches_reference(self):
        session = Workbench().session()
        mixed = session.circuit("fig4")
        report = session.run(mixed, stages=("sensitivity", "stimulus")).report

        def outcomes(engine: str, backend: str):
            result = run_campaign(
                mixed,
                report,
                config=CampaignConfig(
                    faults_per_element=4,
                    seed=99,
                    engine=engine,
                    backend=backend,
                ),
            )
            return [
                (o.element, o.deviation, o.severity, o.detected,
                 o.detecting_target)
                for o in result.outcomes
            ]

        reference = outcomes("reference", "dense")
        assert outcomes("factorized", "sparse") == reference
        assert outcomes("factorized", "dense") == reference

    def test_campaign_diagnostics_report_the_backend(self):
        session = Workbench().session()
        mixed = session.circuit("fig4")
        report = session.run(mixed, stages=("sensitivity", "stimulus")).report
        result = run_campaign(
            mixed,
            report,
            config=CampaignConfig(
                faults_per_element=2, seed=3, backend="sparse"
            ),
        )
        assert result.diagnostics["backend"] == "sparse"
        assert result.diagnostics["misses"] >= 1

"""Property-based tests of MNA physics: linearity and superposition."""

import cmath

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spice import AnalogCircuit, MnaSolver


def two_source_network(v1: float, v2: float) -> AnalogCircuit:
    c = AnalogCircuit("two-source")
    c.vsource("V1", "a", "0", dc=v1)
    c.vsource("V2", "b", "0", dc=v2)
    c.resistor("R1", "a", "mid", 1000.0)
    c.resistor("R2", "b", "mid", 2200.0)
    c.resistor("R3", "mid", "0", 4700.0)
    return c


class TestSuperposition:
    @given(
        st.floats(min_value=-10, max_value=10),
        st.floats(min_value=-10, max_value=10),
    )
    @settings(max_examples=40, deadline=None)
    def test_two_sources_superpose(self, v1, v2):
        both = MnaSolver(two_source_network(v1, v2)).solve_dc()
        only1 = MnaSolver(two_source_network(v1, 0.0)).solve_dc()
        only2 = MnaSolver(two_source_network(0.0, v2)).solve_dc()
        combined = only1.voltage("mid") + only2.voltage("mid")
        assert both.voltage("mid") == pytest.approx(combined, abs=1e-9)

    @given(st.floats(min_value=0.1, max_value=50))
    @settings(max_examples=30, deadline=None)
    def test_scaling(self, scale):
        base = MnaSolver(two_source_network(1.0, 0.0)).solve_dc()
        scaled = MnaSolver(two_source_network(scale, 0.0)).solve_dc()
        assert scaled.voltage("mid") == pytest.approx(
            base.voltage("mid") * scale, rel=1e-9
        )


class TestAcConsistency:
    @given(st.floats(min_value=1.0, max_value=1e5))
    @settings(max_examples=30, deadline=None)
    def test_conjugate_symmetry_magnitude(self, frequency):
        # |H(f)| is well-defined: solving twice gives identical results
        # (no hidden state in the solver).
        c = AnalogCircuit("rc")
        c.vsource("V1", "in", "0", ac=1.0)
        c.resistor("R1", "in", "out", 1000.0)
        c.capacitor("C1", "out", "0", 1e-7)
        solver = MnaSolver(c)
        first = solver.solve(frequency).voltage("out")
        second = solver.solve(frequency).voltage("out")
        assert first == second

    @given(st.floats(min_value=10.0, max_value=1e4))
    @settings(max_examples=30, deadline=None)
    def test_passivity(self, frequency):
        # A passive RC divider never amplifies.
        c = AnalogCircuit("rc")
        c.vsource("V1", "in", "0", ac=1.0)
        c.resistor("R1", "in", "out", 1000.0)
        c.capacitor("C1", "out", "0", 1e-7)
        magnitude = abs(MnaSolver(c).solve(frequency).voltage("out"))
        assert magnitude <= 1.0 + 1e-9

    @given(st.floats(min_value=10.0, max_value=1e5))
    @settings(max_examples=30, deadline=None)
    def test_phase_in_lower_half_plane(self, frequency):
        # A single-pole low-pass lags: phase in (-90, 0] degrees.
        c = AnalogCircuit("rc")
        c.vsource("V1", "in", "0", ac=1.0)
        c.resistor("R1", "in", "out", 1000.0)
        c.capacitor("C1", "out", "0", 1e-7)
        phase = cmath.phase(MnaSolver(c).solve(frequency).voltage("out"))
        assert -cmath.pi / 2 - 1e-6 < phase <= 1e-9

"""Tests for the transient solver against analytic and AC references."""

import math

import pytest

from repro.circuits import bandpass_filter
from repro.spice import (
    AnalogCircuit,
    AnalogError,
    TransientSolver,
    gain_at,
    sine,
    step,
)


def rc_circuit() -> AnalogCircuit:
    c = AnalogCircuit("rc")
    c.vsource("V1", "in", "0")
    c.resistor("R1", "in", "out", 1000.0)
    c.capacitor("C1", "out", "0", 1e-6)  # tau = 1 ms
    return c


class TestStepResponse:
    def test_rc_charging_curve(self):
        solver = TransientSolver(rc_circuit())
        result = solver.run(5e-3, 1e-6, {"V1": step(1.0)})
        tau_index = int(1e-3 / 1e-6) - 1
        value = result.waveform("out")[tau_index]
        assert value == pytest.approx(1 - math.exp(-1), abs=0.002)

    def test_settles_to_final_value(self):
        solver = TransientSolver(rc_circuit())
        result = solver.run(10e-3, 1e-6, {"V1": step(2.0)})
        assert result.waveform("out")[-1] == pytest.approx(2.0, abs=0.001)

    def test_initial_condition(self):
        solver = TransientSolver(rc_circuit())
        result = solver.run(
            5e-3, 1e-6, {"V1": step(0.0)}, initial={"out": 1.0}
        )
        tau_index = int(1e-3 / 1e-6) - 1
        assert result.waveform("out")[tau_index] == pytest.approx(
            math.exp(-1), abs=0.01
        )


class TestSineSteadyState:
    def test_rc_amplitude_matches_ac(self):
        circuit = rc_circuit()
        solver = TransientSolver(circuit)
        result = solver.run(20e-3, 2e-6, {"V1": sine(1.0, 1000.0)})
        assert result.amplitude("out") == pytest.approx(
            gain_at(circuit, "V1", "out", 1000.0), rel=0.01
        )

    def test_bandpass_with_opamps_matches_ac(self):
        circuit = bandpass_filter()
        solver = TransientSolver(circuit)
        result = solver.run(8e-3, 5e-7, {"Vin": sine(1.0, 2500.0)})
        assert result.amplitude("V1") == pytest.approx(2.0, rel=0.03)

    def test_duty_above_threshold(self):
        # The paper's Tp: a 2 V sine spends 1/3 of the cycle above 1 V
        # (sin > 0.5 over a 120-degree window).
        circuit = bandpass_filter()
        solver = TransientSolver(circuit)
        result = solver.run(8e-3, 5e-7, {"Vin": sine(1.0, 2500.0)})
        assert result.duty_above("V1", 1.0) == pytest.approx(1 / 3, abs=0.04)

    def test_comparator_output_bits(self):
        circuit = rc_circuit()
        solver = TransientSolver(circuit)
        result = solver.run(10e-3, 5e-6, {"V1": sine(1.0, 500.0)})
        bits = result.comparator_output("out", 0.0, settle_fraction=0.5)
        assert set(bits) == {0, 1}  # the output crosses zero


class TestErrors:
    def test_bad_step_rejected(self):
        with pytest.raises(AnalogError):
            TransientSolver(rc_circuit()).run(1e-3, 2e-3)

    def test_unknown_node_in_result(self):
        solver = TransientSolver(rc_circuit())
        result = solver.run(1e-3, 1e-5, {"V1": step(1.0)})
        with pytest.raises(AnalogError):
            result.waveform("ghost")

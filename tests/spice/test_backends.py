"""Tests of the pluggable linear-system backends (dense vs sparse)."""

import numpy as np
import pytest

from repro.circuits import bandpass_filter, chebyshev_filter, rc_ladder
from repro.spice import (
    AnalogCircuit,
    AnalogError,
    BACKENDS,
    DenseBackend,
    MnaSolver,
    SPARSE_AUTO_THRESHOLD,
    SparseBackend,
    SparsityPattern,
    SystemAssembler,
    resolve_backend,
)


class TestResolveBackend:
    def test_names_resolve(self):
        assert resolve_backend("dense").name == "dense"
        assert resolve_backend("sparse").name == "sparse"

    def test_auto_picks_dense_below_threshold(self):
        assert resolve_backend("auto", n_nodes=4).name == "dense"
        assert resolve_backend("auto", n_nodes=None).name == "dense"

    def test_auto_picks_sparse_at_threshold(self):
        backend = resolve_backend("auto", n_nodes=SPARSE_AUTO_THRESHOLD)
        assert backend.name == "sparse"

    def test_instances_pass_through(self):
        backend = SparseBackend()
        assert resolve_backend(backend) is backend

    def test_unknown_name_rejected(self):
        with pytest.raises(AnalogError, match="unknown linear-system"):
            resolve_backend("cuda")

    def test_backend_table_matches_config_constant(self):
        from repro.api.config import SIM_BACKENDS

        assert set(SIM_BACKENDS) == {"auto", *BACKENDS}


class TestSparsityPattern:
    def test_duplicates_accumulate_like_dense(self):
        rows = np.array([0, 1, 0, 0, 2, 2], dtype=np.intp)
        cols = np.array([0, 1, 0, 2, 2, 0], dtype=np.intp)
        values = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0], dtype=complex)
        pattern = SparsityPattern(rows, cols, 3)
        dense = np.zeros((3, 3), dtype=complex)
        np.add.at(dense, (rows, cols), values)
        assert np.allclose(pattern.csc(values).toarray(), dense)

    def test_reused_across_value_sets(self):
        rows = np.array([0, 1, 1], dtype=np.intp)
        cols = np.array([0, 0, 1], dtype=np.intp)
        pattern = SparsityPattern(rows, cols, 2)
        first = pattern.csc(np.array([1.0, 2.0, 3.0]))
        second = pattern.csc(np.array([10.0, 20.0, 30.0]))
        assert first[1, 0] == 2.0 and second[1, 0] == 20.0


class TestAssembledSystem:
    def _system(self):
        circuit = AnalogCircuit("divider")
        circuit.vsource("V1", "in", "0", dc=10.0)
        circuit.resistor("R1", "in", "mid", 1000.0)
        circuit.resistor("R2", "mid", "0", 3000.0)
        solver = MnaSolver(circuit)
        system, _, _ = solver._assemble(0.0)
        return system

    def test_dense_and_coo_views_agree(self):
        system = self._system()
        dense = system.to_dense()
        rebuilt = np.zeros_like(dense)
        np.add.at(rebuilt, (system.rows, system.cols), system.values)
        assert np.allclose(dense, rebuilt)

    def test_structure_key_stable_across_values(self):
        first = self._system()
        second = self._system()
        assert first.structure_key() == second.structure_key()


class TestBackendEquivalence:
    CIRCUITS = {
        "bandpass": bandpass_filter,
        "chebyshev": chebyshev_filter,
        "rc-ladder-16": lambda: rc_ladder(16),
    }

    @pytest.mark.parametrize("name", sorted(CIRCUITS))
    @pytest.mark.parametrize("frequency", [0.0, 1.0e3, 25.0e3])
    def test_dense_and_sparse_solutions_agree(self, name, frequency):
        circuit = self.CIRCUITS[name]()
        dense = MnaSolver(circuit, backend="dense").solve(frequency)
        sparse = MnaSolver(circuit, backend="sparse").solve(frequency)
        for node in dense.nodes():
            assert sparse.voltage(node) == pytest.approx(
                dense.voltage(node), abs=1e-9
            )

    @pytest.mark.parametrize("backend", ["dense", "sparse"])
    def test_factorized_deviation_agrees_with_fresh_solve(self, backend):
        circuit = bandpass_filter()
        solver = MnaSolver(circuit, backend=backend)
        factorized = solver.factorized(2.5e3)
        deviated = factorized.solve_deviation("R1", 0.25)
        with circuit.with_deviations({"R1": 0.25}):
            fresh = MnaSolver(circuit, backend=backend).solve(2.5e3)
        for node in fresh.nodes():
            assert deviated.voltage(node) == pytest.approx(
                fresh.voltage(node), abs=1e-9
            )

    @pytest.mark.parametrize("backend", ["dense", "sparse"])
    def test_singular_system_raises_analog_error(self, backend):
        circuit = AnalogCircuit("conflict")
        circuit.vsource("V1", "a", "0", dc=1.0)
        circuit.vsource("V2", "a", "0", dc=2.0)  # contradictory source
        circuit.resistor("R1", "a", "0", 1000.0)
        with pytest.raises(AnalogError, match="singular"):
            MnaSolver(circuit, backend=backend).solve_dc()

    def test_transient_backends_agree(self):
        from repro.spice import TransientSolver, sine

        circuit = AnalogCircuit("rc")
        circuit.vsource("V1", "in", "0", dc=0.0)
        circuit.resistor("R1", "in", "out", 1000.0)
        circuit.capacitor("C1", "out", "0", 1e-6)
        waves = {"V1": sine(1.0, 500.0)}
        dense = TransientSolver(circuit, backend="dense").run(
            4e-3, 1e-5, waves
        )
        sparse = TransientSolver(circuit, backend="sparse").run(
            4e-3, 1e-5, waves
        )
        assert np.max(
            np.abs(dense.waveform("out") - sparse.waveform("out"))
        ) < 1e-9


class TestSolveMany:
    def _factorization(self, backend):
        circuit = rc_ladder(12)
        solver = MnaSolver(circuit, backend=backend)
        system, _, _ = solver._assemble(1.0e3)
        return resolve_backend(backend).factorize(system), system

    @pytest.mark.parametrize("backend", ["dense", "sparse"])
    def test_matches_column_at_a_time(self, backend):
        factorization, system = self._factorization(backend)
        rng = np.random.default_rng(42)
        block = rng.standard_normal(
            (system.size, 5)
        ) + 1j * rng.standard_normal((system.size, 5))
        stacked = factorization.solve_many(block)
        assert stacked.shape == block.shape
        for k in range(block.shape[1]):
            single = factorization.solve(block[:, k].copy())
            assert np.allclose(stacked[:, k], single, rtol=1e-12, atol=1e-12)

    @pytest.mark.parametrize("backend", ["dense", "sparse"])
    def test_counters(self, backend):
        factorization, system = self._factorization(backend)
        assert factorization.stats() == {
            "solve_calls": 0,
            "multi_rhs_solves": 0,
            "multi_rhs_columns": 0,
        }
        factorization.solve(system.rhs)
        factorization.solve_many(np.zeros((system.size, 3), dtype=complex))
        factorization.solve_many(np.zeros((system.size, 2), dtype=complex))
        assert factorization.stats() == {
            "solve_calls": 1,
            "multi_rhs_solves": 2,
            "multi_rhs_columns": 5,
        }

    def test_base_class_default_falls_back_to_single_solves(self):
        from repro.spice.backends import LinearFactorization

        class Doubling(LinearFactorization):
            def _solve(self, rhs):
                return 2.0 * rhs

        factorization = Doubling()
        block = np.arange(8, dtype=complex).reshape(4, 2)
        assert np.array_equal(factorization.solve_many(block), 2.0 * block)
        empty = np.zeros((4, 0), dtype=complex)
        assert factorization.solve_many(empty).shape == (4, 0)
        assert factorization.stats()["multi_rhs_solves"] == 2
        assert factorization.stats()["multi_rhs_columns"] == 2


class TestFactorizationCache:
    def test_hit_miss_counters(self):
        circuit = bandpass_filter()
        solver = MnaSolver(circuit)
        solver.factorized(1.0e3)
        solver.factorized(1.0e3)
        solver.factorized(2.0e3)
        stats = solver.cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 2
        assert stats["size"] == 2
        assert stats["backend"] == "dense"

    def test_cache_size_is_configurable(self):
        circuit = bandpass_filter()
        solver = MnaSolver(circuit, factor_cache_size=2)
        for frequency in (1.0e3, 2.0e3, 3.0e3, 4.0e3):
            solver.factorized(frequency)
        assert solver.cache_stats()["size"] == 2
        assert solver.cache_stats()["max_size"] == 2

    def test_bad_cache_size_rejected(self):
        with pytest.raises(AnalogError, match="factor_cache_size"):
            MnaSolver(bandpass_filter(), factor_cache_size=0)

    def test_sparse_pattern_cache_shared_across_frequencies(self):
        circuit = rc_ladder(16)
        solver = MnaSolver(circuit, backend="sparse")
        for frequency in (1.0e3, 2.0e3, 5.0e3):
            solver.factorized(frequency)
        # All nonzero-frequency assemblies share one sparsity structure.
        assert len(solver._patterns) == 1


class TestSharedStamping:
    def test_assembler_allocates_branches_in_stamp_order(self):
        circuit = AnalogCircuit("rl")
        circuit.vsource("V1", "in", "0", dc=1.0)
        circuit.resistor("R1", "in", "out", 10.0)
        circuit.inductor("L1", "out", "0", 1e-3)
        assembler = SystemAssembler(
            {node: i for i, node in enumerate(circuit.nodes())}
        )
        for component in circuit.components:
            value = component.value if component.has_value else 0.0
            component.stamp(assembler, 0.0, value)
        assert assembler.branch_rows == {"V1": 2, "L1": 3}

    def test_dense_backend_is_default_for_small_circuits(self):
        solver = MnaSolver(bandpass_filter())
        assert isinstance(solver.backend, DenseBackend)

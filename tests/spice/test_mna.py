"""Tests of the MNA solver against hand-solvable circuits."""

import math

import numpy as np
import pytest

from repro.spice import AnalogCircuit, AnalogError, MnaSolver


class TestDc:
    def test_voltage_divider(self):
        c = AnalogCircuit("divider")
        c.vsource("V1", "in", "0", dc=10.0)
        c.resistor("R1", "in", "mid", 1000.0)
        c.resistor("R2", "mid", "0", 3000.0)
        solution = MnaSolver(c).solve_dc()
        assert solution.voltage("mid").real == pytest.approx(7.5)

    def test_current_source_into_resistor(self):
        c = AnalogCircuit("cs")
        c.isource("I1", "0", "n", dc=0.001)  # 1 mA into n
        c.resistor("R1", "n", "0", 2000.0)
        solution = MnaSolver(c).solve_dc()
        assert solution.voltage("n").real == pytest.approx(2.0)

    def test_capacitor_open_at_dc(self):
        c = AnalogCircuit("rc")
        c.vsource("V1", "in", "0", dc=5.0)
        c.resistor("R1", "in", "out", 1000.0)
        c.capacitor("C1", "out", "0", 1e-6)
        solution = MnaSolver(c).solve_dc()
        assert solution.voltage("out").real == pytest.approx(5.0)

    def test_inductor_short_at_dc(self):
        c = AnalogCircuit("rl")
        c.vsource("V1", "in", "0", dc=5.0)
        c.resistor("R1", "in", "out", 1000.0)
        c.inductor("L1", "out", "0", 1e-3)
        solution = MnaSolver(c).solve_dc()
        assert abs(solution.voltage("out")) < 1e-6
        # Branch current flows n1 -> n2 through the device: 5 V / 1 kΩ.
        assert abs(solution.branch_current("L1").real) == pytest.approx(0.005)

    def test_vsource_branch_current(self):
        c = AnalogCircuit("loop")
        c.vsource("V1", "in", "0", dc=10.0)
        c.resistor("R1", "in", "0", 1000.0)
        solution = MnaSolver(c).solve_dc()
        # MNA convention: branch current flows plus -> minus inside.
        assert abs(solution.branch_current("V1")) == pytest.approx(0.01)


class TestAc:
    def test_rc_low_pass_at_corner(self):
        c = AnalogCircuit("rc")
        c.vsource("V1", "in", "0", ac=1.0)
        c.resistor("R1", "in", "out", 1000.0)
        c.capacitor("C1", "out", "0", 1e-6)
        f_corner = 1.0 / (2 * math.pi * 1000.0 * 1e-6)
        solution = MnaSolver(c).solve(f_corner)
        assert abs(solution.voltage("out")) == pytest.approx(
            1 / math.sqrt(2), rel=1e-6
        )
        assert solution.phase_deg("out") == pytest.approx(-45.0, abs=0.01)

    def test_vcvs_gain(self):
        c = AnalogCircuit("vcvs")
        c.vsource("V1", "in", "0", ac=1.0)
        c.resistor("Rload_in", "in", "0", 1e6)
        c.vcvs("E1", "out", "0", "in", "0", gain=7.0)
        c.resistor("Rload", "out", "0", 1000.0)
        solution = MnaSolver(c).solve(100.0)
        assert abs(solution.voltage("out")) == pytest.approx(7.0)

    def test_ideal_opamp_virtual_short(self):
        c = AnalogCircuit("follower")
        c.vsource("V1", "in", "0", ac=1.0)
        c.opamp("U1", "in", "out", "out")  # unity follower
        c.resistor("Rload", "out", "0", 1000.0)
        solution = MnaSolver(c).solve(100.0)
        assert abs(solution.voltage("out")) == pytest.approx(1.0)


class TestErrors:
    def test_empty_circuit_raises(self):
        with pytest.raises(AnalogError):
            MnaSolver(AnalogCircuit("empty")).solve_dc()

    def test_unknown_node_in_solution(self):
        c = AnalogCircuit("x")
        c.vsource("V1", "a", "0", dc=1.0)
        c.resistor("R1", "a", "0", 1.0)
        solution = MnaSolver(c).solve_dc()
        with pytest.raises(AnalogError):
            solution.voltage("ghost")

    def test_unknown_branch_current(self):
        c = AnalogCircuit("x")
        c.vsource("V1", "a", "0", dc=1.0)
        c.resistor("R1", "a", "0", 1.0)
        solution = MnaSolver(c).solve_dc()
        with pytest.raises(AnalogError):
            solution.branch_current("R1")

    def test_ground_voltage_is_zero(self):
        c = AnalogCircuit("x")
        c.vsource("V1", "a", "0", dc=1.0)
        c.resistor("R1", "a", "0", 1.0)
        solution = MnaSolver(c).solve_dc()
        assert solution.voltage("0") == 0

    def test_voltage_between(self):
        c = AnalogCircuit("x")
        c.vsource("V1", "a", "0", dc=2.0)
        c.resistor("R1", "a", "b", 1000.0)
        c.resistor("R2", "b", "0", 1000.0)
        solution = MnaSolver(c).solve_dc()
        assert solution.voltage_between("a", "b").real == pytest.approx(1.0)


class TestDeviations:
    def test_deviation_shifts_solution(self):
        c = AnalogCircuit("divider")
        c.vsource("V1", "in", "0", dc=10.0)
        c.resistor("R1", "in", "mid", 1000.0)
        c.resistor("R2", "mid", "0", 1000.0)
        nominal = MnaSolver(c).solve_dc().voltage("mid").real
        c.set_deviation("R2", 1.0)  # R2 doubles
        shifted = MnaSolver(c).solve_dc().voltage("mid").real
        assert nominal == pytest.approx(5.0)
        assert shifted == pytest.approx(10.0 * 2000 / 3000)

    def test_with_deviations_restores(self):
        c = AnalogCircuit("divider")
        c.vsource("V1", "in", "0", dc=10.0)
        c.resistor("R1", "in", "mid", 1000.0)
        c.resistor("R2", "mid", "0", 1000.0)
        with c.with_deviations({"R2": 0.5}):
            assert c.effective_value("R2") == pytest.approx(1500.0)
        assert c.effective_value("R2") == pytest.approx(1000.0)

    def test_invalid_deviation_rejected(self):
        c = AnalogCircuit("x")
        c.resistor("R1", "a", "0", 1000.0)
        with pytest.raises(AnalogError):
            c.set_deviation("R1", -1.0)

    def test_deviation_of_unknown_element(self):
        c = AnalogCircuit("x")
        with pytest.raises(AnalogError):
            c.set_deviation("Rx", 0.1)

    def test_duplicate_component_rejected(self):
        c = AnalogCircuit("x")
        c.resistor("R1", "a", "0", 1.0)
        with pytest.raises(AnalogError):
            c.resistor("R1", "b", "0", 2.0)

    def test_value_of_valueless_component(self):
        c = AnalogCircuit("x")
        c.vsource("V1", "a", "0", dc=1.0)
        with pytest.raises(AnalogError):
            c.nominal_value("V1")


class TestRelativeConditioning:
    """The ill-conditioning test on ``1 + wᵀy`` is relative, not absolute.

    For a resistor the Sherman–Morrison denominator is an exactly linear
    function of the conductance delta, ``denominator(Δg) = 1 + Δg·D``
    with ``D = wᵀy / Δg`` fixed by the circuit, so a deviation can be
    constructed that lands the denominator on any target — here
    ``t = 1e-13``, *above* the historical absolute ``1e-14`` cutoff but
    below the relative ``DENOM_RTOL`` one.  The old test silently took
    the catastrophically cancelling fast branch for such updates; the
    fixed test must route them to the dense fallback.
    """

    T = 1e-13

    @staticmethod
    def _near_singular_deviation(circuit, element, factorized, t):
        """A deviation placing ``|1 + wᵀy|`` at ``t`` analytically."""
        nominal = circuit.nominal_value(element)
        probe = 0.5
        entries, _ = factorized._stamp_delta(element, probe)
        _, u_rows, u_vals, w_cols, w_vals = factorized._factor_delta(entries)
        u = np.zeros(factorized._size, dtype=complex)
        u[u_rows] = u_vals
        y = factorized._factorization.solve(u)
        w_dot_y = sum(w * y[c] for c, w in zip(w_cols, w_vals))
        dg_probe = 1.0 / (nominal * (1.0 + probe)) - 1.0 / nominal
        slope = (w_dot_y / dg_probe).real  # wᵀy is linear in Δg
        dg_target = (t - 1.0) / slope
        return 1.0 / (1.0 + nominal * dg_target) - 1.0

    def _assert_falls_back(self, circuit, element):
        factorized = MnaSolver(circuit).factorized(0.0)
        deviation = self._near_singular_deviation(
            circuit, element, factorized, self.T
        )
        # Verify the construction: the denominator really sits between
        # the old absolute cutoff and the new relative one.
        entries, _ = factorized._stamp_delta(element, deviation)
        _, u_rows, u_vals, w_cols, w_vals = factorized._factor_delta(entries)
        u = np.zeros(factorized._size, dtype=complex)
        u[u_rows] = u_vals
        y = factorized._factorization.solve(u)
        w_dot_y = sum(w * y[c] for c, w in zip(w_cols, w_vals))
        denominator = 1.0 + w_dot_y
        assert 1e-14 < abs(denominator) < factorized.DENOM_RTOL * max(
            1.0, abs(w_dot_y)
        )
        update = factorized._deviation_update(element, deviation)
        assert isinstance(update, dict)  # dense fallback, not (y, scale)

    def test_near_singular_update_takes_dense_fallback(self):
        from repro.circuits import rc_ladder

        self._assert_falls_back(rc_ladder(8), "R4")

    def test_scaled_registry_circuit_takes_same_branch(self):
        # A copy of the registry ladder with impedances scaled by 1e7:
        # the branch decision must survive bad system scaling.
        from repro.circuits import rc_ladder

        self._assert_falls_back(
            rc_ladder(8, r_ohms=1.0e10, c_farads=1.0e-16), "R4"
        )

    def test_batch_and_scalar_agree_on_fallback_faults(self):
        from repro.circuits import rc_ladder

        circuit = rc_ladder(8)
        factorized = MnaSolver(circuit).factorized(0.0)
        deviation = self._near_singular_deviation(
            circuit, "R4", factorized, self.T
        )
        faults = [("R4", deviation), ("R2", 0.5)]
        batch = factorized.deviation_batch(faults, "out")
        scalar = MnaSolver(circuit).factorized(0.0)
        for (element, dev), voltage in zip(faults, batch):
            expected = scalar.deviated_voltage(element, dev, "out")
            assert voltage == pytest.approx(expected, rel=1e-9, abs=1e-9)

"""Tests for individual component stamps."""

import pytest

from repro.spice import AnalogCircuit, MnaSolver, dc_gain, gain_at


class TestFiniteOpAmp:
    def test_matches_ideal_at_dc_for_large_gain(self):
        def inverting(ideal: bool) -> AnalogCircuit:
            c = AnalogCircuit("inv")
            c.vsource("V1", "in", "0", ac=1.0)
            c.resistor("Rg", "in", "sum", 1000.0)
            c.resistor("Rf", "sum", "out", 10_000.0)
            if ideal:
                c.opamp("U1", "0", "sum", "out")
            else:
                c.finite_opamp("U1", "0", "sum", "out", gain=2e5)
            return c

        ideal_gain = dc_gain(inverting(True), "V1", "out")
        finite_gain = dc_gain(inverting(False), "V1", "out")
        assert finite_gain == pytest.approx(ideal_gain, rel=1e-3)

    def test_gbw_rolls_off(self):
        c = AnalogCircuit("buf")
        c.vsource("V1", "in", "0", ac=1.0)
        c.resistor("Rg", "in", "sum", 1000.0)
        c.resistor("Rf", "sum", "out", 1000.0)
        c.finite_opamp("U1", "0", "sum", "out", gain=2e5, gbw=1e6)
        low = gain_at(c, "V1", "out", 100.0)
        high = gain_at(c, "V1", "out", 2e6)
        assert high < 0.7 * low

    def test_gain_deviation_injectable(self):
        # Open-loop gain is a live element value: a catastrophic gain
        # drop must degrade the closed-loop inverting gain.
        c = AnalogCircuit("inv")
        c.vsource("V1", "in", "0", ac=1.0)
        c.resistor("Rg", "in", "sum", 1000.0)
        c.resistor("Rf", "sum", "out", 100_000.0)
        c.finite_opamp("U1", "0", "sum", "out", gain=2e5)
        nominal = dc_gain(c, "V1", "out")
        c.set_deviation("U1", -0.999)  # open-loop gain collapses to 200
        degraded = dc_gain(c, "V1", "out")
        assert degraded < 0.75 * nominal

    def test_element_names_include_finite_opamp(self):
        c = AnalogCircuit("x")
        c.finite_opamp("U1", "a", "b", "c")
        assert "U1" in c.element_names()


class TestVCCS:
    def test_transconductance(self):
        c = AnalogCircuit("gm")
        c.vsource("V1", "in", "0", dc=2.0)
        c.resistor("Rin", "in", "0", 1e6)
        c.add(__import__("repro.spice", fromlist=["VCCS"]).VCCS(
            "G1", "out", "0", "in", "0", 0.001
        ))
        c.resistor("RL", "out", "0", 1000.0)
        solution = MnaSolver(c).solve_dc()
        # i = gm*v = 2 mA into RL... sign: current out of "out" node.
        assert abs(solution.voltage("out").real) == pytest.approx(2.0)


class TestNodes:
    def test_nodes_discovered_across_attrs(self):
        c = AnalogCircuit("x")
        c.vsource("V1", "a", "0", dc=1.0)
        c.vcvs("E1", "b", "0", "a", "0", 2.0)
        c.opamp("U1", "c", "d", "e")
        assert set(c.nodes()) == {"a", "b", "c", "d", "e"}

    def test_sources_listing(self):
        c = AnalogCircuit("x")
        c.vsource("V1", "a", "0", dc=1.0)
        c.isource("I1", "a", "0", dc=0.1)
        c.resistor("R1", "a", "0", 1.0)
        assert [s.name for s in c.sources()] == ["V1", "I1"]

"""Tests for the experiment regenerators (fast subset).

The heavyweight experiments (table3/table4/table8 at full size) run in the
benchmark harness; here we exercise the fast ones end-to-end and the heavy
ones through reduced configurations.
"""

import pytest

from repro.experiments import (
    example2,
    figure6,
    table1,
    table4,
    table5,
    table6,
    table7,
)
from repro.experiments.runner import EXPERIMENTS, run_all


class TestExample2:
    def test_reproduces_paper_counts(self):
        result = example2.run()
        assert result.unconstrained.n_faults == 18
        assert result.unconstrained.n_untestable == 0
        assert result.constrained.n_untestable == 2

    def test_render_contains_fault_names(self):
        text = example2.run().render()
        assert "l3 s-a-0" in text and "l5 s-a-0" in text


class TestTable1:
    def test_ten_rows(self):
        result = table1.run()
        assert len(result.choices) == 10

    def test_render_table(self):
        text = table1.run().render()
        assert "Table 1" in text
        assert "Dbar" in text and "D" in text


class TestTable4Small:
    def test_single_circuit_run(self):
        result = table4.run(circuits=("c432",))
        assert len(result.rows) == 1
        row = result.rows[0]
        assert row.n_inputs == 36
        assert row.with_constraints.n_untestable >= row.without.n_untestable
        assert "Table 4" in result.render()


class TestTable5Small:
    def test_single_circuit_run(self):
        result = table5.run(circuits=("c432",))
        row = result.rows[0]
        assert row.n_converter_lines == 15
        assert 0 <= row.blocked_d <= 15
        assert len(row.observability_d) == 15


class TestTable6:
    def test_tent(self):
        result = table6.run()
        eds = result.coverage.ed_percent
        assert max(eds) == eds[7]
        assert "R8,R9" in result.render()

    def test_small_ladder(self):
        result = table6.run(n_comparators=5)
        assert len(result.coverage.ed_percent) == 5


class TestTable7Small:
    def test_single_circuit(self):
        result = table7.run(circuits=("c432",))
        assert set(result.coverages) == {"c432"}
        assert "Table 7" in result.render()


class TestFigure6:
    def test_paper_scenario(self):
        result = figure6.run()
        assert "Vo2" in result.observable_outputs
        assert result.vector == {"l1": 1, "l4": 0}
        assert "digraph" in result.dots["Vo2"]

    def test_render(self):
        text = figure6.run().render()
        assert "outputs containing a D node: Vo2" in text


class TestRunner:
    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "example1", "example2", "table1", "table2", "table3",
            "table4", "table5", "table6", "table7", "table8",
            "figure6", "responses",
        }

    def test_run_all_subset(self):
        text = run_all(["example2", "figure6"])
        assert "######## example2" in text
        assert "######## figure6" in text

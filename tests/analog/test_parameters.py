"""Tests for performance-parameter definitions."""

import pytest

from repro.analog import (
    ParameterKind,
    PerformanceParameter,
    standard_filter_parameters,
)
from repro.spice import AnalogCircuit


def inverting_amp(gain: float = 4.0) -> AnalogCircuit:
    c = AnalogCircuit("inv")
    c.vsource("Vin", "in", "0", ac=1.0)
    c.resistor("Rg", "in", "sum", 1000.0)
    c.resistor("Rf", "sum", "out", gain * 1000.0)
    c.opamp("U1", "0", "sum", "out")
    return c


class TestMeasure:
    def test_dc_gain(self):
        p = PerformanceParameter("Adc", ParameterKind.DC_GAIN, "Vin", "out")
        assert p.measure(inverting_amp()) == pytest.approx(4.0)

    def test_ac_gain_requires_frequency(self):
        p = PerformanceParameter("Aac", ParameterKind.AC_GAIN, "Vin", "out")
        with pytest.raises(ValueError):
            p.measure(inverting_amp())

    def test_ac_gain(self):
        p = PerformanceParameter(
            "Aac", ParameterKind.AC_GAIN, "Vin", "out", frequency_hz=1000.0
        )
        assert p.measure(inverting_amp()) == pytest.approx(4.0)

    def test_measure_respects_deviation_state(self):
        p = PerformanceParameter("Adc", ParameterKind.DC_GAIN, "Vin", "out")
        circuit = inverting_amp()
        with circuit.with_deviations({"Rf": 0.5}):
            assert p.measure(circuit) == pytest.approx(6.0)
        assert p.measure(circuit) == pytest.approx(4.0)


class TestStandardSets:
    def test_band_pass_set(self):
        params = standard_filter_parameters("Vin", "out")
        assert [p.name for p in params] == ["A1", "A2", "f0", "fc1", "fc2"]
        kinds = {p.name: p.kind for p in params}
        assert kinds["A1"] is ParameterKind.PEAK_GAIN
        assert kinds["fc1"] is ParameterKind.CUTOFF_LOW

    def test_low_pass_set(self):
        params = standard_filter_parameters("Vin", "out", band_pass=False)
        assert [p.name for p in params] == ["Adc", "Aac", "fc"]

    def test_parameters_are_frozen(self):
        p = standard_filter_parameters("Vin", "out")[0]
        with pytest.raises(AttributeError):
            p.name = "other"

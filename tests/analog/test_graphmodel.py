"""Tests for the graph-modeling formulations."""

import math

import networkx as nx
import pytest

from repro.analog import (
    assignment_by_flow,
    circuit_graph,
    elements_between,
    matching_certificate,
)
from repro.analog.deviation import DeviationMatrix, DeviationResult
from repro.circuits import bandpass_filter


def make_matrix(table):
    parameters = list(table)
    elements = sorted({e for row in table.values() for e in row})
    results = {}
    for parameter, row in table.items():
        for element in elements:
            ed = row.get(element, math.inf)
            results[(parameter, element)] = DeviationResult(
                parameter, element,
                math.inf if math.isinf(ed) else ed / 100.0, +1, 0.0,
            )
    return DeviationMatrix(parameters, elements, results)


MATRIX = make_matrix(
    {
        "A1": {"Rg": 10.0, "Rd": 10.0},
        "A2": {"Rg": 170.0, "Rd": 80.0, "R1": 30.0, "C1": 10.0},
        "f0": {"R1": 35.0, "C1": 35.0},
    }
)


class TestCircuitGraph:
    def test_nodes_and_edges(self):
        graph = circuit_graph(bandpass_filter())
        assert "0" in graph
        assert "V1" in graph
        names = {d["component"] for *_e, d in graph.edges(data=True)}
        assert {"Rg", "Rd", "C1", "R1", "R2", "C2", "R3", "R4"} <= names

    def test_connected_through_opamps(self):
        graph = circuit_graph(bandpass_filter())
        assert nx.has_path(graph, "in", "V1")

    def test_elements_between(self):
        elements = elements_between(bandpass_filter(), "in", "V1")
        assert {"Rg", "Rd", "C1"} <= elements

    def test_elements_between_unknown_nodes(self):
        assert elements_between(bandpass_filter(), "ghost", "V1") == set()


class TestMatching:
    def test_matching_size(self):
        certificate = matching_certificate(MATRIX)
        # 4 elements, 3 parameters: matching saturates parameters or
        # elements; here 3 dedicated assignments are achievable.
        assert certificate.matching_size == 3
        for element, parameter in certificate.matched_elements.items():
            ed = MATRIX.deviation_percent(parameter, element)
            assert math.isfinite(ed)

    def test_lower_bound_consistent(self):
        certificate = matching_certificate(MATRIX)
        assert 0 <= certificate.parameter_lower_bound <= 3

    def test_empty_graph(self):
        empty = make_matrix({"P": {}})
        certificate = matching_certificate(empty)
        assert certificate.matching_size == 0


class TestFlowAssignment:
    def test_every_coverable_element_assigned(self):
        assignment = assignment_by_flow(MATRIX, ["A1", "A2"], capacity=4)
        assert set(assignment) == {"Rg", "Rd", "R1", "C1"}

    def test_costs_prefer_tight_parameters(self):
        assignment = assignment_by_flow(MATRIX, ["A1", "A2"], capacity=4)
        assert assignment["Rg"] == "A1"  # 10% beats 170%
        assert assignment["Rd"] == "A1"

    def test_capacity_limits_load(self):
        assignment = assignment_by_flow(MATRIX, ["A1", "A2"], capacity=1)
        loads = {}
        for parameter in assignment.values():
            loads[parameter] = loads.get(parameter, 0) + 1
        assert all(load <= 1 for load in loads.values())

    def test_threshold_prunes(self):
        assignment = assignment_by_flow(
            MATRIX, ["A2"], capacity=4, max_ed_percent=50.0
        )
        assert "Rg" not in assignment  # 170% pruned
        assert assignment.get("C1") == "A2"

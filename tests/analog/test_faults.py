"""Tests for analog fault models."""

import pytest

from repro.analog import (
    AnalogFaultKind,
    catastrophic_faults,
    open_fault,
    parametric,
    short_fault,
)
from repro.spice import AnalogCircuit, dc_gain


def divider() -> AnalogCircuit:
    c = AnalogCircuit("div")
    c.vsource("Vin", "in", "0", ac=1.0)
    c.resistor("R1", "in", "out", 1000.0)
    c.resistor("R2", "out", "0", 1000.0)
    c.capacitor("C1", "out", "0", 1e-9)
    return c


class TestParametric:
    def test_deviation_applied_and_restored(self):
        c = divider()
        fault = parametric("R2", 1.0)
        nominal = dc_gain(c, "Vin", "out")
        with fault.apply(c):
            faulty = dc_gain(c, "Vin", "out")
        restored = dc_gain(c, "Vin", "out")
        assert nominal == pytest.approx(0.5)
        assert faulty == pytest.approx(2000 / 3000)
        assert restored == pytest.approx(0.5)

    def test_str(self):
        assert str(parametric("R1", 0.25)) == "R1 +25.0%"


class TestCatastrophic:
    def test_open_resistor_kills_divider(self):
        c = divider()
        with open_fault("R2").apply(c):
            assert dc_gain(c, "Vin", "out") == pytest.approx(1.0, abs=1e-2)

    def test_short_resistor(self):
        c = divider()
        with short_fault("R2").apply(c):
            assert dc_gain(c, "Vin", "out") == pytest.approx(0.0, abs=1e-2)

    def test_capacitor_duality(self):
        c = divider()
        # An *open* capacitor means it disappears: its value shrinks.
        open_c = open_fault("C1")
        assert open_c.value_deviation(c) < 0
        short_c = short_fault("C1")
        assert short_c.value_deviation(c) > 0

    def test_enumeration(self):
        faults = catastrophic_faults(divider())
        # 2 per R and C: (R1, R2, C1) x (open, short).
        assert len(faults) == 6
        kinds = {f.kind for f in faults}
        assert kinds == {AnalogFaultKind.OPEN, AnalogFaultKind.SHORT}

    def test_str(self):
        assert str(open_fault("R1")) == "R1 open"

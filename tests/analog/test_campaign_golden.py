"""Golden campaign regression: seeded outcomes are a checked-in artifact.

A small fig4 campaign (`faults_per_element=3`, `seed=2024`) is frozen as
a versioned ``campaign`` Artifact under ``tests/analog/goldens/``.  The
test regenerates the campaign with the default (factorized) engine and
asserts the canonical JSON rendering is byte-identical to the golden —
any drift in fault drawing, step ordering, detection semantics or
serialization shows up as a diff.

Floats are rounded to 12 decimal places before serialization so the
golden is stable against last-ulp BLAS differences while still pinning
the outcomes.

Regenerate (after an *intentional* semantics change) with::

    PYTHONPATH=src python tests/analog/test_campaign_golden.py
"""

import sys
from pathlib import Path

if __name__ == "__main__":  # allow running straight from a checkout
    _src = Path(__file__).resolve().parents[2] / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

import pytest

from repro.api import Artifact, CampaignConfig, Workbench
from repro.core import CampaignResult, InjectionOutcome, run_campaign

GOLDEN_PATH = Path(__file__).parent / "goldens" / "fig4_campaign.json"
CONFIG = CampaignConfig(faults_per_element=3, seed=2024)


def _canonical(result: CampaignResult) -> CampaignResult:
    """Round the float fields so the rendering is platform-stable."""
    return CampaignResult(
        outcomes=[
            InjectionOutcome(
                element=o.element,
                deviation=round(o.deviation, 12),
                severity=round(o.severity, 12),
                detected=o.detected,
                detecting_target=o.detecting_target,
            )
            for o in result.outcomes
        ]
    )


def _golden_artifact(result: CampaignResult) -> Artifact:
    return Artifact.from_campaign(
        _canonical(result),
        circuit="fig4",
        meta={
            "golden": True,
            "config": CONFIG.as_dict(),
            "regenerate": "PYTHONPATH=src python "
            "tests/analog/test_campaign_golden.py",
        },
    )


def _run_campaign(engine: str) -> CampaignResult:
    session = Workbench().session()
    mixed = session.circuit("fig4")
    report = session.run(mixed, stages=("sensitivity", "stimulus")).report
    return run_campaign(mixed, report, config=CONFIG.replace(engine=engine))


@pytest.fixture(scope="module")
def campaign():
    return _run_campaign("factorized")


class TestGoldenCampaign:
    def test_golden_exists_and_loads(self):
        artifact = Artifact.load(GOLDEN_PATH)
        assert artifact.kind == "campaign"
        golden = artifact.campaign()
        assert golden.n_injected == 8 * CONFIG.faults_per_element

    def test_outcomes_byte_stable(self, campaign):
        regenerated = _golden_artifact(campaign).to_json() + "\n"
        assert regenerated == GOLDEN_PATH.read_text(), (
            "campaign outcomes drifted from the checked-in golden; if "
            "the change is intentional, regenerate via "
            "`PYTHONPATH=src python tests/analog/test_campaign_golden.py`"
        )

    def test_reference_engine_matches_golden(self, campaign):
        oracle = _run_campaign("reference")
        assert (
            _golden_artifact(oracle).to_json()
            == _golden_artifact(campaign).to_json()
        )

    def test_detection_promise_in_golden(self):
        golden = Artifact.load(GOLDEN_PATH).campaign()
        assert golden.guaranteed_detection_rate == 1.0


if __name__ == "__main__":
    GOLDEN_PATH.parent.mkdir(exist_ok=True)
    _golden_artifact(_run_campaign("factorized")).save(GOLDEN_PATH)
    print(f"golden written: {GOLDEN_PATH}")

"""Sharded campaign execution: determinism, checkpoint/resume, fan-out.

The contract under test (``repro.core.sharding``): for one seed, the
campaign's ``InjectionOutcome`` list is *identical* — element by
element, byte by byte once serialized — whatever the thread fan-out
(``max_workers``), the shard count (``shards``, including counts that do
not divide the fault population) or the process fan-out
(``shard_workers``), and a run resumed from shard checkpoints merges to
the same result as an uninterrupted one.
"""

import json

import pytest

from repro.api import Artifact, CampaignConfig, ConfigError, Workbench
from repro.core import run_campaign, shard_bounds
from repro.core.sharding import (
    _execute_shard,
    _ShardContext,
    _write_checkpoint,
    campaign_fingerprint,
    checkpoint_path,
)
from repro.analog.faultsim import draw_faults
import random


def _outcome_key(result):
    return [
        (o.element, o.deviation, o.severity, o.detected, o.detecting_target)
        for o in result.outcomes
    ]


@pytest.fixture(scope="module")
def prepared():
    session = Workbench().session()
    mixed = session.circuit("fig4")
    report = session.run(mixed, stages=("sensitivity", "stimulus")).report
    return mixed, report


@pytest.fixture(scope="module")
def baseline(prepared):
    """The classic single-process, single-thread run: the reference."""
    mixed, report = prepared
    return run_campaign(mixed, report, config=_config())


def _config(**overrides):
    return CampaignConfig(faults_per_element=4, seed=11).replace(**overrides)


class TestShardBounds:
    def test_partition_is_exact_and_contiguous(self):
        for n_faults in (0, 1, 7, 32, 33):
            for shards in (1, 2, 5, 40):
                bounds = shard_bounds(n_faults, shards)
                assert len(bounds) == shards
                assert bounds[0][0] == 0
                assert bounds[-1][1] == n_faults
                for (_, stop), (start, _) in zip(bounds, bounds[1:]):
                    assert stop == start  # no gap, no overlap
                sizes = [stop - start for start, stop in bounds]
                assert max(sizes) - min(sizes) <= 1  # balanced

    def test_more_shards_than_faults_yields_empty_shards(self):
        bounds = shard_bounds(3, 5)
        assert [stop - start for start, stop in bounds] == [1, 1, 1, 0, 0]

    def test_invalid_counts_rejected(self):
        with pytest.raises(ConfigError):
            shard_bounds(10, 0)
        with pytest.raises(ConfigError):
            shard_bounds(-1, 2)


class TestDeterminism:
    @pytest.mark.parametrize("workers", [1, 2, 8])
    def test_thread_fanout_identical(self, prepared, baseline, workers):
        mixed, report = prepared
        result = run_campaign(
            mixed, report, config=_config(max_workers=workers)
        )
        assert _outcome_key(result) == _outcome_key(baseline)

    @pytest.mark.parametrize("shards", [1, 2, 5])
    def test_shard_counts_identical(self, prepared, baseline, shards):
        # fig4 draws 32 faults: 5 deliberately does not divide it.
        mixed, report = prepared
        result = run_campaign(mixed, report, config=_config(shards=shards))
        assert _outcome_key(result) == _outcome_key(baseline)
        if shards > 1:
            rows = result.diagnostics["shard_rows"]
            assert sum(row["n_faults"] for row in rows) == len(
                baseline.outcomes
            )

    def test_process_pool_identical(self, prepared, baseline):
        mixed, report = prepared
        result = run_campaign(
            mixed, report, config=_config(shards=4, shard_workers=4)
        )
        assert _outcome_key(result) == _outcome_key(baseline)
        assert result.diagnostics["process_pool"] is True

    def test_processes_with_in_shard_threads_identical(
        self, prepared, baseline
    ):
        mixed, report = prepared
        result = run_campaign(
            mixed,
            report,
            config=_config(shards=2, shard_workers=2, max_workers=2),
        )
        assert _outcome_key(result) == _outcome_key(baseline)

    def test_multithreaded_caller_falls_back_in_process(
        self, prepared, baseline
    ):
        """Never fork under a threaded parent — run in-process instead."""
        from concurrent.futures import ThreadPoolExecutor

        mixed, report = prepared
        with ThreadPoolExecutor(max_workers=1) as pool:
            result = pool.submit(
                run_campaign,
                mixed,
                report,
                config=_config(shards=4, shard_workers=4),
            ).result()
        assert result.diagnostics["process_pool"] is False
        assert _outcome_key(result) == _outcome_key(baseline)

    def test_serialized_outcomes_byte_identical(self, prepared, baseline):
        mixed, report = prepared
        sharded = run_campaign(mixed, report, config=_config(shards=3))
        unsharded_json = Artifact.from_campaign(baseline, "fig4").to_json()
        sharded_json = Artifact.from_campaign(sharded, "fig4").to_json()
        assert sharded_json == unsharded_json


class TestCheckpointResume:
    def test_checkpoints_written_and_loadable(
        self, prepared, baseline, tmp_path
    ):
        mixed, report = prepared
        config = _config(shards=3, checkpoint_dir=str(tmp_path))
        result = run_campaign(mixed, report, config=config)
        assert _outcome_key(result) == _outcome_key(baseline)
        for index in range(3):
            artifact = Artifact.load(checkpoint_path(tmp_path, index, 3))
            assert artifact.kind == "campaign-shard"
            assert artifact.payload["shard_index"] == index
            assert artifact.payload["n_shards"] == 3
            assert artifact.campaign().outcomes  # decodes through Artifact

    def test_interrupted_run_resumes_from_finished_shards(
        self, prepared, baseline, tmp_path
    ):
        """Simulate a kill: only shard 1 finished, then a fresh run."""
        mixed, report = prepared
        config = _config(shards=3, checkpoint_dir=str(tmp_path))
        testable = [t for t in report.analog_tests if t.testable]
        faults = draw_faults(
            testable,
            config.faults_per_element,
            config.severity_range,
            random.Random(config.seed),
        )
        bounds = shard_bounds(len(faults), config.shards)
        fingerprint = campaign_fingerprint(mixed.name, config, faults, testable)
        context = _ShardContext(mixed, testable, faults, bounds, config)
        partial = _execute_shard(context, 1)
        _write_checkpoint(tmp_path, partial, 3, fingerprint, mixed.name)

        resumed = run_campaign(mixed, report, config=config)
        assert resumed.diagnostics["resumed_shards"] == [1]
        assert _outcome_key(resumed) == _outcome_key(baseline)

    def test_deleted_checkpoint_is_recomputed(
        self, prepared, baseline, tmp_path
    ):
        mixed, report = prepared
        config = _config(shards=3, checkpoint_dir=str(tmp_path))
        run_campaign(mixed, report, config=config)
        checkpoint_path(tmp_path, 1, 3).unlink()
        resumed = run_campaign(mixed, report, config=config)
        assert resumed.diagnostics["resumed_shards"] == [0, 2]
        assert _outcome_key(resumed) == _outcome_key(baseline)
        assert checkpoint_path(tmp_path, 1, 3).exists()  # re-persisted

    def test_stale_checkpoints_are_ignored(self, prepared, tmp_path):
        """A different seed invalidates every checkpoint fingerprint."""
        mixed, report = prepared
        config = _config(shards=2, checkpoint_dir=str(tmp_path))
        run_campaign(mixed, report, config=config)
        other = run_campaign(mixed, report, config=config.replace(seed=99))
        assert other.diagnostics["resumed_shards"] == []
        fresh = run_campaign(
            mixed, report, config=config.replace(seed=99, checkpoint_dir=None)
        )
        assert _outcome_key(other) == _outcome_key(fresh)

    @pytest.mark.parametrize(
        "content", ['{"torn":', "[1, 2, 3]", '{"foreign": true}']
    )
    def test_torn_or_foreign_checkpoint_is_ignored(
        self, prepared, baseline, tmp_path, content
    ):
        mixed, report = prepared
        config = _config(shards=2, checkpoint_dir=str(tmp_path))
        run_campaign(mixed, report, config=config)
        checkpoint_path(tmp_path, 0, 2).write_text(content)
        resumed = run_campaign(mixed, report, config=config)
        assert resumed.diagnostics["resumed_shards"] == [1]
        assert _outcome_key(resumed) == _outcome_key(baseline)

    def test_fully_resumed_run_keeps_engine_diagnostics(
        self, prepared, tmp_path
    ):
        mixed, report = prepared
        config = _config(shards=2, checkpoint_dir=str(tmp_path))
        first = run_campaign(mixed, report, config=config)
        resumed = run_campaign(mixed, report, config=config)
        assert resumed.diagnostics["resumed_shards"] == [0, 1]
        # The checkpoint carries the engine diagnostics forward.
        assert resumed.diagnostics["backend"] == first.diagnostics["backend"]
        assert (
            resumed.diagnostics["digital_engine"]
            == first.diagnostics["digital_engine"]
        )

    def test_checkpoint_json_is_strict(self, prepared, tmp_path):
        mixed, report = prepared
        config = _config(shards=2, checkpoint_dir=str(tmp_path))
        run_campaign(mixed, report, config=config)
        for index in range(2):
            text = checkpoint_path(tmp_path, index, 2).read_text()
            json.loads(text)  # no Infinity/NaN literals


class TestFingerprint:
    def test_fanout_knobs_do_not_invalidate_checkpoints(self, prepared):
        """Re-running with different worker counts must resume cleanly."""
        mixed, report = prepared
        testable = [t for t in report.analog_tests if t.testable]
        faults = draw_faults(
            testable, 4, (0.5, 3.0), random.Random(11)
        )
        base = campaign_fingerprint(mixed.name, _config(), faults)
        for overrides in (
            {"shards": 7},
            {"shard_workers": 3},
            {"max_workers": 5},
            {"checkpoint_dir": "/elsewhere"},
        ):
            assert (
                campaign_fingerprint(mixed.name, _config(**overrides), faults)
                == base
            )

    def test_outcome_relevant_fields_do_invalidate(self, prepared):
        mixed, report = prepared
        testable = [t for t in report.analog_tests if t.testable]
        faults = draw_faults(
            testable, 4, (0.5, 3.0), random.Random(11)
        )
        base = campaign_fingerprint(mixed.name, _config(), faults, testable)
        assert (
            campaign_fingerprint("other", _config(), faults, testable) != base
        )
        assert (
            campaign_fingerprint(mixed.name, _config(seed=12), faults, testable)
            != base
        )
        assert (
            campaign_fingerprint(mixed.name, _config(), faults[:-1], testable)
            != base
        )

    def test_changed_program_steps_do_invalidate(self, prepared):
        """A regenerated test program must never reuse old checkpoints."""
        import dataclasses

        mixed, report = prepared
        testable = [t for t in report.analog_tests if t.testable]
        faults = draw_faults(testable, 4, (0.5, 3.0), random.Random(11))
        base = campaign_fingerprint(mixed.name, _config(), faults, testable)
        stimulus = dataclasses.replace(
            testable[0].stimulus, amplitude=testable[0].stimulus.amplitude * 2
        )
        changed = [dataclasses.replace(testable[0], stimulus=stimulus)]
        changed += list(testable[1:])
        assert (
            campaign_fingerprint(mixed.name, _config(), faults, changed)
            != base
        )


class TestContentCacheResume:
    """The ResultCache-backed incremental layer (``cache_dir``)."""

    def _population(self, prepared):
        mixed, report = prepared
        testable = [t for t in report.analog_tests if t.testable]
        faults = draw_faults(testable, 4, (0.5, 3.0), random.Random(11))
        return mixed, testable, faults

    def test_warm_rerun_executes_no_shards(
        self, prepared, baseline, tmp_path
    ):
        mixed, report = prepared
        config = _config(shards=4, shard_workers=1, cache_dir=str(tmp_path))
        cold = run_campaign(mixed, report, config=config)
        assert cold.diagnostics["shards_executed"] == 4
        assert cold.diagnostics["shards_from_cache"] == []
        warm = run_campaign(mixed, report, config=config)
        assert warm.diagnostics["shards_executed"] == 0
        assert warm.diagnostics["shards_from_cache"] == [0, 1, 2, 3]
        assert _outcome_key(warm) == _outcome_key(baseline)
        # The merged outcome documents are byte-identical.
        assert json.dumps(
            Artifact.from_campaign(cold).payload, sort_keys=True
        ) == json.dumps(Artifact.from_campaign(warm).payload, sort_keys=True)

    def test_one_fault_edit_recomputes_only_its_shard(
        self, prepared, tmp_path
    ):
        import dataclasses

        from repro.core.sharding import run_sharded_campaign

        mixed, testable, faults = self._population(prepared)
        config = _config(shards=4, shard_workers=1, cache_dir=str(tmp_path))
        cold = run_sharded_campaign(mixed, testable, faults, config)
        assert cold.diagnostics["shards_executed"] == 4
        # Edit one fault's deviation: exactly one slice fingerprint
        # changes, so exactly one shard is recomputed.
        edited = list(faults)
        edited[5] = dataclasses.replace(
            edited[5], deviation=edited[5].deviation * 1.5
        )
        warm = run_sharded_campaign(mixed, testable, edited, config)
        assert warm.diagnostics["shards_executed"] == 1
        assert len(warm.diagnostics["shards_from_cache"]) == 3
        # The recomputed slice is the one holding fault #5.
        bounds = shard_bounds(len(faults), 4)
        [(touched, _)] = [
            (i, b) for i, b in enumerate(bounds) if b[0] <= 5 < b[1]
        ]
        assert touched not in warm.diagnostics["shards_from_cache"]
        # Unedited faults keep their outcomes.
        for cold_o, warm_o in zip(cold.outcomes, warm.outcomes):
            if cold_o.element == edited[5].element:
                continue
            assert (cold_o.element, cold_o.deviation, cold_o.detected) == (
                warm_o.element, warm_o.deviation, warm_o.detected
            )

    def test_fanout_and_strategy_knobs_hit_the_same_entries(
        self, prepared, tmp_path
    ):
        mixed, report = prepared
        cold = run_campaign(
            mixed,
            report,
            config=_config(shards=4, shard_workers=1, cache_dir=str(tmp_path)),
        )
        assert cold.diagnostics["shards_executed"] == 4
        # Different worker counts and the batch strategy flag are
        # excluded from the shard fingerprint: full cache service.
        warm = run_campaign(
            mixed,
            report,
            config=_config(
                shards=4,
                shard_workers=2,
                max_workers=3,
                batch=False,
                cache_dir=str(tmp_path),
            ),
        )
        assert warm.diagnostics["shards_executed"] == 0
        assert _outcome_key(warm) == _outcome_key(cold)

    def test_checkpoint_resume_seeds_the_cache(self, prepared, tmp_path):
        mixed, report = prepared
        checkpoints = tmp_path / "checkpoints"
        cache = tmp_path / "cache"
        # Legacy flat-checkpoint run, no cache.
        run_campaign(
            mixed,
            report,
            config=_config(shards=3, checkpoint_dir=str(checkpoints)),
        )
        # Same campaign with both: checkpoints satisfy the shards and
        # migrate into the content cache...
        migrating = run_campaign(
            mixed,
            report,
            config=_config(
                shards=3,
                checkpoint_dir=str(checkpoints),
                cache_dir=str(cache),
            ),
        )
        assert migrating.diagnostics["shards_executed"] == 0
        assert migrating.diagnostics["shards_from_cache"] == []
        # ...so a cache-only run (checkpoints gone) is fully served.
        cached = run_campaign(
            mixed, report, config=_config(shards=3, cache_dir=str(cache))
        )
        assert cached.diagnostics["shards_executed"] == 0
        assert cached.diagnostics["shards_from_cache"] == [0, 1, 2]

    def test_shard_fingerprint_keys_the_slice_not_the_layout(
        self, prepared
    ):
        from repro.core.sharding import shard_fingerprint

        mixed, testable, faults = self._population(prepared)
        piece = faults[:8]
        base = shard_fingerprint(mixed.name, _config(), piece, testable)
        # Population-drawing knobs are implied by the slice itself.
        for overrides in (
            {"seed": 99},
            {"faults_per_element": 7},
            {"severity_range": (0.1, 9.0)},
            {"shards": 5, "shard_workers": 2},
            {"batch": False},
            {"cache_dir": "/elsewhere"},
        ):
            assert (
                shard_fingerprint(
                    mixed.name, _config(**overrides), piece, testable
                )
                == base
            )
        # Outcome-relevant knobs and the slice itself do invalidate.
        assert (
            shard_fingerprint(
                mixed.name, _config(engine="reference"), piece, testable
            )
            != base
        )
        assert (
            shard_fingerprint(mixed.name, _config(), faults[:7], testable)
            != base
        )


class TestConfigSurface:
    def test_invalid_shard_settings_rejected(self):
        with pytest.raises(ConfigError):
            CampaignConfig(shards=0)
        with pytest.raises(ConfigError):
            CampaignConfig(shard_workers=0)
        with pytest.raises(ConfigError):
            CampaignConfig(max_workers=0)

    def test_session_injects_shards(self, prepared):
        from repro.api import SessionConfig, TestSession

        session = TestSession(
            config=SessionConfig(
                campaign=_config(), shards=2
            )
        )
        result = session.run(
            "fig4",
            stages=("sensitivity", "stimulus", "campaign"),
        )
        assert result.campaign.diagnostics["shards"] == 2
        assert result.configs["campaign"]["shards"] == 2
        # Per-shard rows surface in the stage timing table.
        labels = [t.stage for t in result.timings if t.parent == "campaign"]
        assert labels == ["campaign:shard0", "campaign:shard1"]
        assert "campaign:shard0" in result.outcome.timing_table()

    def test_explicit_campaign_shards_beat_session(self):
        from repro.api import SessionConfig, TestSession

        session = TestSession(
            config=SessionConfig(campaign=_config(shards=3), shards=2)
        )
        result = session.run(
            "fig4", stages=("sensitivity", "stimulus", "campaign")
        )
        assert result.campaign.diagnostics["shards"] == 3


@pytest.mark.slow
class TestShardEqualitySlow:
    """Sharded == unsharded on fig4 and the Example 3 ladder assembly."""

    @pytest.mark.parametrize("shards", [2, 3, 4])
    def test_fig4_process_pool_equality(self, prepared, shards):
        mixed, report = prepared
        config = CampaignConfig(faults_per_element=8, seed=2024)
        unsharded = run_campaign(mixed, report, config=config)
        sharded = run_campaign(
            mixed,
            report,
            config=config.replace(shards=shards, shard_workers=shards),
        )
        assert _outcome_key(sharded) == _outcome_key(unsharded)

    def test_example3_ladder_equality(self):
        session = Workbench().session()
        mixed = session.circuit("example3-c432")
        report = session.run(mixed, stages=("sensitivity", "stimulus")).report
        config = CampaignConfig(faults_per_element=3, seed=5)
        unsharded = run_campaign(mixed, report, config=config)
        sharded = run_campaign(
            mixed, report, config=config.replace(shards=4, shard_workers=2)
        )
        assert _outcome_key(sharded) == _outcome_key(unsharded)

"""Tests for sensitivity analysis against analytic values."""

import pytest

from repro.analog import (
    ParameterKind,
    PerformanceParameter,
    sensitivity,
    sensitivity_matrix,
)
from repro.spice import AnalogCircuit


def inverting_amp() -> AnalogCircuit:
    c = AnalogCircuit("inv")
    c.vsource("Vin", "in", "0", ac=1.0)
    c.resistor("Rg", "in", "sum", 1000.0)
    c.resistor("Rf", "sum", "out", 4000.0)
    c.resistor("Rshunt", "out", "0", 1e6)  # gain-independent load
    c.opamp("U1", "0", "sum", "out")
    return c


ADC = PerformanceParameter("Adc", ParameterKind.DC_GAIN, "Vin", "out")


class TestSensitivity:
    def test_feedback_resistor_unity(self):
        # |A| = Rf/Rg: S(A, Rf) = +1 exactly.
        s = sensitivity(inverting_amp(), ADC, "Rf")
        assert s == pytest.approx(1.0, abs=1e-3)

    def test_input_resistor_minus_one(self):
        s = sensitivity(inverting_amp(), ADC, "Rg")
        assert s == pytest.approx(-1.0, abs=1e-3)

    def test_independent_element_zero(self):
        s = sensitivity(inverting_amp(), ADC, "Rshunt")
        assert s == pytest.approx(0.0, abs=1e-6)

    def test_nominal_shortcut(self):
        circuit = inverting_amp()
        nominal = ADC.measure(circuit)
        s = sensitivity(circuit, ADC, "Rf", nominal=nominal)
        assert s == pytest.approx(1.0, abs=1e-3)


class TestMatrix:
    def test_matrix_shape_and_lookup(self):
        circuit = inverting_amp()
        matrix = sensitivity_matrix(circuit, [ADC])
        assert matrix.values.shape == (1, 3)
        assert matrix.of("Adc", "Rf") == pytest.approx(1.0, abs=1e-3)

    def test_most_sensitive_parameter(self):
        circuit = inverting_amp()
        aac = PerformanceParameter(
            "Aac", ParameterKind.AC_GAIN, "Vin", "out", frequency_hz=100.0
        )
        matrix = sensitivity_matrix(circuit, [ADC, aac])
        chosen = matrix.most_sensitive_parameter("Rf")
        assert chosen.name in ("Adc", "Aac")

    def test_dependent_elements(self):
        circuit = inverting_amp()
        matrix = sensitivity_matrix(circuit, [ADC])
        assert set(matrix.dependent_elements("Adc")) == {"Rg", "Rf"}

    def test_explicit_element_subset(self):
        circuit = inverting_amp()
        matrix = sensitivity_matrix(circuit, [ADC], elements=["Rf"])
        assert matrix.elements == ["Rf"]
        assert matrix.values.shape == (1, 1)

"""Differential suite: the factorized engine against the reference oracle.

The factorized campaign engine (per-frequency LU reuse, Sherman–Morrison
rank-one updates, memoization, early exit) must be *indistinguishable*
from the slow re-assemble-and-solve reference engine: identical seeded
``InjectionOutcome`` lists on real circuits, and solver-level agreement
to 1e-9 across a frequency sweep.

Marked ``slow``: runs in its own CI job, not in tier-1.
"""

import pytest

from repro.api import CampaignConfig, Workbench
from repro.circuits import bandpass_filter, chebyshev_filter
from repro.core import run_campaign
from repro.spice import MnaSolver, log_frequencies

pytestmark = pytest.mark.slow


def _outcome_key(result):
    return [
        (o.element, o.deviation, o.severity, o.detected, o.detecting_target)
        for o in result.outcomes
    ]


@pytest.fixture(scope="module")
def session():
    return Workbench().session()


def _prepared(session, name):
    mixed = session.circuit(name)
    report = session.run(mixed, stages=("sensitivity", "stimulus")).report
    return mixed, report


class TestEngineEquivalence:
    def test_fig4_outcomes_identical(self, session):
        mixed, report = _prepared(session, "fig4")
        for seed in (11, 2024, 7):
            config = CampaignConfig(faults_per_element=8, seed=seed)
            fast = run_campaign(
                mixed, report, config=config.replace(engine="factorized")
            )
            oracle = run_campaign(
                mixed, report, config=config.replace(engine="reference")
            )
            assert _outcome_key(fast) == _outcome_key(oracle)

    def test_example3_outcomes_identical(self, session):
        mixed, report = _prepared(session, "example3-c432")
        config = CampaignConfig(faults_per_element=3, seed=5)
        fast = run_campaign(
            mixed, report, config=config.replace(engine="factorized")
        )
        oracle = run_campaign(
            mixed, report, config=config.replace(engine="reference")
        )
        assert fast.n_injected > 0
        assert _outcome_key(fast) == _outcome_key(oracle)

    def test_fig4_batched_matches_looped_and_oracle(self, session):
        # The tentpole bar: the batched engine is byte-identical to the
        # historical per-fault loop *and* the re-solve oracle.
        mixed, report = _prepared(session, "fig4")
        for seed in (11, 2024, 7):
            config = CampaignConfig(faults_per_element=8, seed=seed)
            batched = run_campaign(mixed, report, config=config)
            looped = run_campaign(
                mixed, report, config=config.replace(batch=False)
            )
            oracle = run_campaign(
                mixed, report, config=config.replace(engine="reference")
            )
            assert batched.outcomes == looped.outcomes
            assert _outcome_key(batched) == _outcome_key(oracle)

    def test_example3_batched_matches_looped_and_oracle(self, session):
        mixed, report = _prepared(session, "example3-c432")
        config = CampaignConfig(faults_per_element=3, seed=5)
        batched = run_campaign(mixed, report, config=config)
        looped = run_campaign(
            mixed, report, config=config.replace(batch=False)
        )
        oracle = run_campaign(
            mixed, report, config=config.replace(engine="reference")
        )
        assert batched.n_injected > 0
        assert batched.outcomes == looped.outcomes
        assert _outcome_key(batched) == _outcome_key(oracle)

    def test_threaded_factorized_matches_serial(self, session):
        mixed, report = _prepared(session, "fig4")
        config = CampaignConfig(faults_per_element=8, seed=13)
        serial = run_campaign(mixed, report, config=config)
        threaded = run_campaign(
            mixed, report, config=config.replace(max_workers=4)
        )
        assert _outcome_key(serial) == _outcome_key(threaded)


class TestShermanMorrisonSweep:
    """Rank-one updates match full dense solves across frequency."""

    @pytest.mark.parametrize("make", [bandpass_filter, chebyshev_filter])
    def test_deviated_solutions_match_full_solve(self, make):
        circuit = make()
        source = circuit.sources()[0]
        source.ac, source.dc = 1.0, 1.0
        solver = MnaSolver(circuit)
        frequencies = [0.0] + log_frequencies(10.0, 1.0e6, 4)
        for frequency in frequencies:
            factorized = solver.factorized(frequency)
            for element in circuit.element_names():
                for deviation in (-0.5, -0.05, 0.25, 2.0):
                    fast = factorized.solve_deviation(element, deviation)
                    with circuit.with_deviations({element: deviation}):
                        full = MnaSolver(circuit).solve(frequency)
                    for node in full.nodes():
                        assert fast.voltage(node) == pytest.approx(
                            full.voltage(node), abs=1e-9, rel=1e-9
                        )

    def test_deviated_voltage_matches_solution(self):
        circuit = bandpass_filter()
        source = circuit.sources()[0]
        source.ac = 1.0
        factorized = MnaSolver(circuit).factorized(2500.0)
        for element in circuit.element_names():
            for deviation in (-0.3, 0.4):
                full = factorized.solve_deviation(element, deviation)
                for node in full.nodes():
                    # Scalar vs vectorized complex arithmetic may differ
                    # in the last ulp; anything beyond that is a bug.
                    assert factorized.deviated_voltage(
                        element, deviation, node
                    ) == pytest.approx(full.voltage(node), rel=1e-13)

"""Tests for the worst-case element deviation solver."""

import math

import pytest

from repro.analog import (
    ParameterKind,
    PerformanceParameter,
    UNTESTABLE,
    deviation_matrix,
    worst_case_deviation,
)
from repro.spice import AnalogCircuit


def inverting_amp() -> AnalogCircuit:
    c = AnalogCircuit("inv")
    c.vsource("Vin", "in", "0", ac=1.0)
    c.resistor("Rg", "in", "sum", 1000.0)
    c.resistor("Rf", "sum", "out", 4000.0)
    c.opamp("U1", "0", "sum", "out")
    return c


ADC = PerformanceParameter("Adc", ParameterKind.DC_GAIN, "Vin", "out")


class TestWorstCase:
    def test_two_element_amp_analytic(self):
        # |A| = Rf/Rg with S = ±1: guaranteed detection needs the fault's
        # own shift to exceed box (5 %) + budget (|S_other|*5 % = 5 %),
        # i.e. about 10 % (slightly less downward by nonlinearity).
        result = worst_case_deviation(inverting_amp(), ADC, "Rf")
        assert 0.08 < result.deviation < 0.12
        assert result.masking_budget == pytest.approx(0.05, abs=0.005)

    def test_direction_reported(self):
        result = worst_case_deviation(inverting_amp(), ADC, "Rf")
        assert result.direction in (+1, -1)

    def test_no_adversary_bound_is_box_only(self):
        result = worst_case_deviation(
            inverting_amp(), ADC, "Rf", adversary="none"
        )
        # Only the 5 % box to clear: ED just over 5 %.
        assert 0.04 < result.deviation < 0.07

    def test_adversary_ordering(self):
        optimistic = worst_case_deviation(
            inverting_amp(), ADC, "Rf", adversary="none"
        ).deviation
        guaranteed = worst_case_deviation(
            inverting_amp(), ADC, "Rf", adversary="sensitivity"
        ).deviation
        assert guaranteed >= optimistic

    def test_corners_adversary(self):
        result = worst_case_deviation(
            inverting_amp(), ADC, "Rf", adversary="corners"
        )
        assert 0.08 < result.deviation < 0.13

    def test_unknown_adversary_rejected(self):
        with pytest.raises(ValueError):
            worst_case_deviation(
                inverting_amp(), ADC, "Rf", adversary="mystic"
            )

    def test_insensitive_element_untestable(self):
        c = inverting_amp()
        c.resistor("Rshunt", "out", "0", 1e6)
        result = worst_case_deviation(c, ADC, "Rshunt")
        assert math.isinf(result.deviation)


class TestMatrix:
    def test_matrix_structure(self):
        c = inverting_amp()
        c.resistor("Rshunt", "out", "0", 1e6)
        matrix = deviation_matrix(c, [ADC])
        assert matrix.parameters == ["Adc"]
        assert set(matrix.elements) == {"Rg", "Rf", "Rshunt"}
        assert math.isinf(matrix.deviation_percent("Adc", "Rshunt"))
        assert 8.0 < matrix.deviation_percent("Adc", "Rf") < 12.0

    def test_element_coverage(self):
        matrix = deviation_matrix(inverting_amp(), [ADC])
        parameter, ed = matrix.element_coverage("Rf")
        assert parameter == "Adc"
        assert 8.0 < ed < 12.0

    def test_row(self):
        matrix = deviation_matrix(inverting_amp(), [ADC])
        row = matrix.row("Adc")
        assert len(row) == 2
        assert all(v > 0 for v in row)

"""Tests for test-set selection on synthetic deviation matrices."""

import math

import pytest

from repro.analog import (
    DeviationMatrix,
    coverage_graph,
    select_parameters_greedy,
    select_parameters_maxcoverage,
    select_parameters_mincover,
)
from repro.analog.deviation import DeviationResult


def make_matrix(table: dict[str, dict[str, float]]) -> DeviationMatrix:
    """Build a DeviationMatrix from {parameter: {element: ed_percent}}."""
    parameters = list(table)
    elements = sorted({e for row in table.values() for e in row})
    results = {}
    for parameter, row in table.items():
        for element in elements:
            ed = row.get(element, math.inf)
            results[(parameter, element)] = DeviationResult(
                parameter, element,
                math.inf if math.isinf(ed) else ed / 100.0,
                +1, 0.0,
            )
    return DeviationMatrix(parameters, elements, results)


PAPER_LIKE = make_matrix(
    {
        # Mirrors the Example 1 structure: A1 covers only Rg/Rd tightly;
        # A2 covers everything else at its per-element minimum.
        "A1": {"Rg": 10.1, "Rd": 9.9},
        "A2": {"Rg": 176.0, "Rd": 176.0, "R1": 28.9, "R2": 28.9,
               "R3": 28.9, "R4": 28.9, "C1": 27.0, "C2": 28.9},
        "f0": {"R1": 36.3, "R2": 36.3, "R3": 36.3, "R4": 32.2,
               "C1": 36.3, "C2": 36.3},
    }
)


class TestGreedy:
    def test_covers_everything(self):
        selection = select_parameters_greedy(PAPER_LIKE)
        assert selection.complete
        assert set(selection.element_coverage) == set(PAPER_LIKE.elements)

    def test_threshold_limits_cover(self):
        selection = select_parameters_greedy(PAPER_LIKE, max_ed_percent=50.0)
        # Rg/Rd only coverable via A1 under the threshold.
        assert "A1" in selection.parameters

    def test_uncoverable_elements_reported(self):
        matrix = make_matrix({"P": {"a": 10.0}})
        matrix.elements.append("ghost")
        for parameter in matrix.parameters:
            matrix.results[(parameter, "ghost")] = DeviationResult(
                parameter, "ghost", math.inf, +1, 0.0
            )
        selection = select_parameters_greedy(matrix)
        assert selection.uncovered == ["ghost"]
        assert not selection.complete


class TestMaxCoverage:
    def test_selects_paper_answer(self):
        # Max fault coverage on the paper's numbers is exactly {A1, A2}.
        selection = select_parameters_maxcoverage(PAPER_LIKE)
        assert set(selection.parameters) == {"A1", "A2"}

    def test_every_element_at_global_minimum(self):
        selection = select_parameters_maxcoverage(PAPER_LIKE)
        for element, (_param, ed) in selection.element_coverage.items():
            _best_param, best_ed = PAPER_LIKE.element_coverage(element)
            assert ed == pytest.approx(best_ed)


class TestMinCover:
    def test_minimum_cardinality(self):
        selection = select_parameters_mincover(PAPER_LIKE)
        # A2 alone covers every element (at looser EDs).
        assert len(selection.parameters) == 1
        assert selection.complete

    def test_matches_greedy_cardinality_on_small_cases(self):
        greedy = select_parameters_greedy(PAPER_LIKE)
        exact = select_parameters_mincover(PAPER_LIKE)
        assert len(exact.parameters) <= len(greedy.parameters)

    def test_too_many_parameters_guarded(self):
        table = {f"P{i}": {"a": 10.0} for i in range(21)}
        with pytest.raises(ValueError):
            select_parameters_mincover(make_matrix(table))


class TestGraph:
    def test_bipartite_structure(self):
        graph = coverage_graph(PAPER_LIKE)
        parameter_nodes = [
            n for n, d in graph.nodes(data=True) if d["side"] == "parameter"
        ]
        element_nodes = [
            n for n, d in graph.nodes(data=True) if d["side"] == "element"
        ]
        assert len(parameter_nodes) == 3
        assert len(element_nodes) == 8
        assert graph.has_edge(("P", "A1"), ("E", "Rd"))
        assert not graph.has_edge(("P", "A1"), ("E", "R1"))

    def test_threshold_prunes_edges(self):
        graph = coverage_graph(PAPER_LIKE, max_ed_percent=50.0)
        assert not graph.has_edge(("P", "A2"), ("E", "Rg"))

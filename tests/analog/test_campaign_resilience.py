"""Resilient campaign execution: chaos-injected failures, differential.

The contract under test (``repro.core.sharding`` + ``repro.devtools.
chaos``): a campaign disturbed by injected faults — a shard exception,
a killed worker, a hung shard, a torn checkpoint, a crash at merge —
either *recovers* to a result byte-identical to the undisturbed run, or
*quarantines* the failing shard into an honest partial result whose
completed shards are still byte-identical to their undisturbed
counterparts.  Chaos plans are pure functions of (site, key, attempt),
so every scenario here is deterministic.
"""

import pytest

from repro.api import Artifact, CampaignConfig, Workbench
from repro.core import run_campaign
from repro.core.sharding import (
    ShardExecutionError,
    ShardHeartbeat,
    ShardRetry,
    ShardRun,
    campaign_fingerprint,
    checkpoint_path,
    failure_path,
    shard_bounds,
)
from repro.devtools.chaos import ChaosError, ChaosEvent, ChaosPlan


def _outcome_key(result):
    return [
        (o.element, o.deviation, o.severity, o.detected, o.detecting_target)
        for o in result.outcomes
    ]


def _config(**overrides):
    return CampaignConfig(faults_per_element=4, seed=11).replace(**overrides)


def _chaos(*events) -> str:
    return ChaosPlan(events=tuple(events)).to_json()


@pytest.fixture(scope="module")
def prepared():
    session = Workbench().session()
    mixed = session.circuit("fig4")
    report = session.run(mixed, stages=("sensitivity", "stimulus")).report
    return mixed, report


@pytest.fixture(scope="module")
def baseline(prepared):
    """The undisturbed run every recovered run must match exactly."""
    mixed, report = prepared
    return run_campaign(mixed, report, config=_config())


class TestRetryRecovery:
    def test_shard_exception_retried_to_identical_result(
        self, prepared, baseline
    ):
        """A shard that fails once recovers byte-identically on retry."""
        mixed, report = prepared
        events = []
        config = _config(
            shards=3,
            shard_workers=1,
            retry_backoff=0.0,
            chaos=_chaos(
                ChaosEvent(site="shard", key="1", attempts=(1,)),
            ),
        )
        result = run_campaign(
            mixed, report, config=config, progress=events.append
        )
        assert _outcome_key(result) == _outcome_key(baseline)
        assert not result.partial
        retries = result.diagnostics["retries"]
        assert [r["shard"] for r in retries] == [1]
        assert retries[0]["kind"] == "exception"
        assert retries[0]["retried"] is True
        # The failed attempt streamed as a ShardRetry progress event.
        shard_retries = [e for e in events if isinstance(e, ShardRetry)]
        assert len(shard_retries) == 1
        assert shard_retries[0].index == 1
        assert shard_retries[0].next_attempt == 2
        # Serialized, recovered == undisturbed, byte for byte.
        assert (
            Artifact.from_campaign(result, "fig4").to_json()
            == Artifact.from_campaign(baseline, "fig4").to_json()
        )

    def test_retry_schedule_is_deterministic(self, prepared):
        """Two disturbed runs retry on identical schedules and agree."""
        mixed, report = prepared
        config = _config(
            shards=2,
            shard_workers=1,
            retry_backoff=0.0,
            chaos=_chaos(ChaosEvent(site="shard", key="0", attempts=(1,))),
        )
        first = run_campaign(mixed, report, config=config)
        second = run_campaign(mixed, report, config=config)
        assert first.diagnostics["retries"] == second.diagnostics["retries"]
        assert _outcome_key(first) == _outcome_key(second)


class TestWorkerLoss:
    def test_killed_worker_degrades_and_recovers(self, prepared, baseline):
        """A chaos-killed worker process costs attempts, not outcomes."""
        mixed, report = prepared
        config = _config(
            shards=3,
            shard_workers=2,
            retry_backoff=0.0,
            chaos=_chaos(
                ChaosEvent(
                    site="shard", key="0", action="kill", attempts=(1,)
                ),
            ),
        )
        result = run_campaign(mixed, report, config=config)
        assert _outcome_key(result) == _outcome_key(baseline)
        assert not result.partial
        if result.diagnostics["process_pool"]:
            assert result.diagnostics["degraded_to_in_process"] is True
            assert any(
                row["kind"] == "worker-lost"
                for row in result.diagnostics["retries"]
            )

    def test_hung_worker_killed_at_deadline_and_recovered(
        self, prepared, baseline
    ):
        """A shard stuck past shard_timeout is killed, then retried."""
        mixed, report = prepared
        config = _config(
            shards=3,
            shard_workers=2,
            shard_timeout=0.75,
            retry_backoff=0.0,
            chaos=_chaos(
                ChaosEvent(
                    site="shard",
                    key="1",
                    action="delay",
                    attempts=(1,),
                    seconds=3.0,
                ),
            ),
        )
        result = run_campaign(mixed, report, config=config)
        assert _outcome_key(result) == _outcome_key(baseline)
        assert not result.partial
        kinds = {row["kind"] for row in result.diagnostics["retries"]}
        assert "deadline" in kinds

    def test_in_process_deadline_is_checked_after(self, prepared, baseline):
        """Serial mode can't kill itself mid-shard: overruns are detected
        on completion, discarded and retried."""
        mixed, report = prepared
        config = _config(
            shards=2,
            shard_workers=1,
            shard_timeout=0.75,
            retry_backoff=0.0,
            chaos=_chaos(
                ChaosEvent(
                    site="shard",
                    key="0",
                    action="delay",
                    attempts=(1,),
                    seconds=1.0,
                ),
            ),
        )
        result = run_campaign(mixed, report, config=config)
        assert _outcome_key(result) == _outcome_key(baseline)
        retries = result.diagnostics["retries"]
        assert [r["kind"] for r in retries] == ["deadline"]


class TestQuarantine:
    def test_exhausted_shard_quarantined_into_partial_result(
        self, prepared, baseline, tmp_path
    ):
        """Persistent failure yields a partial result, not a crash."""
        mixed, report = prepared
        config = _config(
            shards=3,
            shard_workers=1,
            retry_backoff=0.0,
            checkpoint_dir=str(tmp_path),
            chaos=_chaos(
                ChaosEvent(site="shard", key="1", attempts=(1, 2)),
            ),
        )
        result = run_campaign(mixed, report, config=config)
        assert result.partial
        assert [row["shard"] for row in result.failed_shards] == [1]
        row = result.failed_shards[0]
        bounds = shard_bounds(len(baseline.outcomes), 3)
        assert (row["start"], row["stop"]) == bounds[1]
        assert row["attempts"] == 2
        assert row["kind"] == "exception"
        # Completed shards merge byte-identically to their undisturbed
        # counterparts: shard 1's slice is missing, nothing else moved.
        expected = (
            _outcome_key(baseline)[: bounds[1][0]]
            + _outcome_key(baseline)[bounds[1][1] :]
        )
        assert _outcome_key(result) == expected
        # The summary names the damage.
        assert "PARTIAL" in result.summary()
        missing = bounds[1][1] - bounds[1][0]
        assert f"{missing} fault(s) not executed" in result.summary()
        # Durable evidence: a failure artifact next to the checkpoints.
        evidence = Artifact.load(failure_path(tmp_path, 1, 3))
        assert evidence.kind == "failure"
        record = evidence.failure()
        assert record.phase == "shard"
        assert record.attempts == 2
        assert record.key == "1"
        assert record.detail["start"], record.detail["stop"] == bounds[1]

    def test_quarantined_shard_heals_on_rerun(self, prepared, baseline, tmp_path):
        """A re-run without the fault re-executes only the failed shard."""
        mixed, report = prepared
        broken = _config(
            shards=3,
            shard_workers=1,
            retry_backoff=0.0,
            checkpoint_dir=str(tmp_path),
            chaos=_chaos(
                ChaosEvent(site="shard", key="1", attempts=(1, 2)),
            ),
        )
        run_campaign(mixed, report, config=broken)
        healed = run_campaign(
            mixed, report, config=broken.replace(chaos=None)
        )
        assert not healed.partial
        assert healed.diagnostics["resumed_shards"] == [0, 2]
        assert _outcome_key(healed) == _outcome_key(baseline)
        # Success clears the quarantine evidence.
        assert not failure_path(tmp_path, 1, 3).exists()

    def test_partial_artifact_round_trips(self, prepared):
        mixed, report = prepared
        config = _config(
            shards=3,
            shard_workers=1,
            retry_backoff=0.0,
            chaos=_chaos(
                ChaosEvent(site="shard", key="2", attempts=(1, 2)),
            ),
        )
        result = run_campaign(mixed, report, config=config)
        assert result.partial
        artifact = Artifact.from_campaign(result, "fig4")
        reloaded = Artifact.from_json(artifact.to_json()).campaign()
        assert reloaded.partial
        assert reloaded.failed_shards == result.failed_shards
        assert _outcome_key(reloaded) == _outcome_key(result)

    def test_complete_results_keep_the_old_byte_format(self, prepared, baseline):
        """partial/failed_shards keys only appear on partial results, so
        complete campaigns serialize exactly as they always did."""
        mixed, report = prepared
        result = run_campaign(
            mixed, report, config=_config(shards=2, shard_workers=1)
        )
        document = Artifact.from_campaign(result, "fig4").payload
        assert "partial" not in document
        assert "failed_shards" not in document

    def test_no_quarantine_aborts_instead(self, prepared):
        mixed, report = prepared
        config = _config(
            shards=2,
            shard_workers=1,
            quarantine=False,
            retry_backoff=0.0,
            chaos=_chaos(
                ChaosEvent(site="shard", key="0", attempts=(1, 2)),
            ),
        )
        with pytest.raises(ShardExecutionError):
            run_campaign(mixed, report, config=config)


class TestCrashResume:
    def test_torn_checkpoint_write_resumes_cleanly(
        self, prepared, baseline, tmp_path
    ):
        """Dying mid-checkpoint-write leaves a torn file; the resumed run
        re-executes exactly that shard and matches the baseline."""
        mixed, report = prepared
        config = _config(
            shards=3,
            shard_workers=1,
            checkpoint_dir=str(tmp_path),
            chaos=_chaos(
                ChaosEvent(site="checkpoint", key="1", action="torn"),
            ),
        )
        with pytest.raises(ChaosError):
            run_campaign(mixed, report, config=config)
        # Shard 0's checkpoint is durable; shard 1's is half a document.
        assert checkpoint_path(tmp_path, 0, 3).exists()
        torn = checkpoint_path(tmp_path, 1, 3).read_text()
        assert torn  # the torn write really happened...
        resumed = run_campaign(
            mixed, report, config=config.replace(chaos=None)
        )
        # ...but reads as missing: only shard 0 is resumed.
        assert resumed.diagnostics["resumed_shards"] == [0]
        assert _outcome_key(resumed) == _outcome_key(baseline)

    def test_crash_at_merge_resumes_everything_from_checkpoints(
        self, prepared, baseline, tmp_path
    ):
        """Dying at merge time loses nothing: every shard checkpoint is
        already durable, so the re-run executes zero shards."""
        mixed, report = prepared
        config = _config(
            shards=3,
            shard_workers=1,
            checkpoint_dir=str(tmp_path),
            chaos=_chaos(ChaosEvent(site="merge", key="merge")),
        )
        with pytest.raises(ChaosError):
            run_campaign(mixed, report, config=config)
        resumed = run_campaign(
            mixed, report, config=config.replace(chaos=None)
        )
        assert resumed.diagnostics["resumed_shards"] == [0, 1, 2]
        assert _outcome_key(resumed) == _outcome_key(baseline)


class TestHeartbeats:
    def test_heartbeats_stream_while_shards_run(self, prepared):
        mixed, report = prepared
        events = []
        config = _config(
            shards=2, shard_workers=1, heartbeat_interval=0.001
        )
        run_campaign(mixed, report, config=config, progress=events.append)
        beats = [e for e in events if isinstance(e, ShardHeartbeat)]
        assert beats
        for beat in beats:
            assert beat.shards == 2
            assert 0 <= beat.completed <= 2
            assert beat.elapsed >= 0.0
        # Heartbeats ride alongside the existing ShardRun stream.
        assert len([e for e in events if isinstance(e, ShardRun)]) == 2

    def test_no_heartbeats_without_interval(self, prepared):
        mixed, report = prepared
        events = []
        run_campaign(
            mixed,
            report,
            config=_config(shards=2, shard_workers=1),
            progress=events.append,
        )
        assert not any(isinstance(e, ShardHeartbeat) for e in events)


class TestFingerprintExclusion:
    def test_resilience_knobs_never_invalidate_checkpoints(self, prepared):
        """Retuning failure handling must not re-key the campaign."""
        import random

        from repro.analog.faultsim import draw_faults

        mixed, report = prepared
        testable = [t for t in report.analog_tests if t.testable]
        faults = draw_faults(testable, 4, (0.5, 3.0), random.Random(11))
        base = campaign_fingerprint(mixed.name, _config(), faults)
        for overrides in (
            {"shard_attempts": 5},
            {"shard_timeout": 9.0},
            {"retry_backoff": 1.0},
            {"quarantine": False},
            {"heartbeat_interval": 0.5},
            {"chaos": _chaos(ChaosEvent(site="merge", key="merge"))},
        ):
            assert (
                campaign_fingerprint(mixed.name, _config(**overrides), faults)
                == base
            )

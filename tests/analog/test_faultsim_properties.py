"""Property-based checks of the factorized fault-simulation substrate.

Seeded :class:`random.Random` generators (no extra dependencies) build
randomized ladder netlists and deviation draws, and assert the two
load-bearing invariants of the fast campaign engine:

* a Sherman–Morrison rank-one update of the factorized system equals a
  full re-assembled dense solve of the deviated circuit;
* ``with_deviations`` always restores nominal element values — on clean
  exits, on solver failures inside the scope, and on failures while the
  deviations are still being applied.
"""

import random

import pytest

from repro.analog.faultsim import _UnitSource
from repro.spice import AnalogCircuit, AnalogError, MnaSolver


def random_ladder(rng: random.Random, stages: int) -> tuple[AnalogCircuit, str]:
    """A solvable random RLC ladder driven by a unit source."""
    circuit = AnalogCircuit(f"ladder-{stages}-{rng.randrange(1 << 30)}")
    circuit.vsource("Vin", "n0", "0", dc=1.0, ac=1.0)
    previous = "n0"
    for index in range(stages):
        node = f"n{index + 1}"
        circuit.resistor(
            f"Rs{index}", previous, node, 10.0 ** rng.uniform(2.0, 5.0)
        )
        if rng.random() < 0.8:
            circuit.capacitor(
                f"C{index}", node, "0", 10.0 ** rng.uniform(-9.0, -7.0)
            )
        if rng.random() < 0.5:
            circuit.resistor(
                f"Rp{index}", node, "0", 10.0 ** rng.uniform(3.0, 6.0)
            )
        if rng.random() < 0.3:
            circuit.inductor(
                f"L{index}", node, "0", 10.0 ** rng.uniform(-3.0, -1.0)
            )
        previous = node
    return circuit, previous


def test_engine_registry_matches_config():
    # api.config cannot import the engine registry (configs are plain
    # data); this pins the two name lists to each other instead.
    from repro.analog.faultsim import ENGINES
    from repro.api.config import CAMPAIGN_ENGINES

    assert set(CAMPAIGN_ENGINES) == set(ENGINES)


class TestRankOneUpdateProperty:
    def test_rank_one_update_equals_reassembled_solve(self):
        rng = random.Random(20260730)
        for _ in range(12):
            circuit, _ = random_ladder(rng, stages=rng.randint(2, 5))
            solver = MnaSolver(circuit)
            elements = circuit.element_names()
            for _ in range(4):
                frequency = rng.choice(
                    [0.0, 10.0 ** rng.uniform(0.0, 6.0)]
                )
                element = rng.choice(elements)
                deviation = rng.choice((-1.0, 1.0)) * rng.uniform(0.01, 0.9)
                factorized = solver.factorized(frequency)
                fast = factorized.solve_deviation(element, deviation)
                with circuit.with_deviations({element: deviation}):
                    full = MnaSolver(circuit).solve(frequency)
                for node in full.nodes():
                    assert fast.voltage(node) == pytest.approx(
                        full.voltage(node), rel=1e-9, abs=1e-9
                    )

    def test_solve_batch_matches_individual_solves(self):
        rng = random.Random(7)
        circuit, _ = random_ladder(rng, stages=3)
        solver = MnaSolver(circuit)
        frequencies = [0.0, 1e3, 1e3, 5e4, 1e3]
        batch = solver.solve_batch(frequencies)
        for frequency, solution in zip(frequencies, batch):
            fresh = MnaSolver(circuit).solve(frequency)
            for node in fresh.nodes():
                assert solution.voltage(node) == pytest.approx(
                    fresh.voltage(node), rel=1e-12, abs=1e-12
                )

    def test_factorization_cache_tracks_deviation_state(self):
        # A cached LU must never be served for a different circuit
        # state: deviating an element re-keys the factorization.
        rng = random.Random(3)
        circuit, output = random_ladder(rng, stages=3)
        solver = MnaSolver(circuit)
        nominal = solver.factorized(1e3).solution().voltage(output)
        circuit.set_deviation("Rs0", 0.5)
        deviated = solver.factorized(1e3).solution().voltage(output)
        fresh = MnaSolver(circuit).solve(1e3).voltage(output)
        circuit.clear_deviations()
        assert deviated == pytest.approx(fresh, rel=1e-12)
        assert deviated != nominal
        assert solver.factorized(1e3).solution().voltage(output) == nominal

    def test_zero_deviation_returns_baseline(self):
        rng = random.Random(5)
        circuit, output = random_ladder(rng, stages=2)
        factorized = MnaSolver(circuit).factorized(1e3)
        assert factorized.solve_deviation(
            "Rs0", 0.0
        ).voltage(output) == factorized.solution().voltage(output)


class TestDeviationScopeRestoration:
    def _random_deviations(self, rng, circuit):
        elements = circuit.element_names()
        chosen = rng.sample(elements, k=min(3, len(elements)))
        return {
            name: rng.choice((-1.0, 1.0)) * rng.uniform(0.05, 0.9)
            for name in chosen
        }

    def test_restores_on_clean_exit(self):
        rng = random.Random(11)
        for _ in range(8):
            circuit, _ = random_ladder(rng, stages=rng.randint(2, 4))
            before = circuit.deviations()
            with circuit.with_deviations(self._random_deviations(rng, circuit)):
                pass
            assert circuit.deviations() == before

    def test_restores_on_failure_inside_scope(self):
        # The campaign's failure mode: a solve blows up mid-scope.
        rng = random.Random(13)
        for _ in range(8):
            circuit, _ = random_ladder(rng, stages=rng.randint(2, 4))
            deviations = self._random_deviations(rng, circuit)
            with pytest.raises(AnalogError):
                with circuit.with_deviations(deviations):
                    assert circuit.deviations() == deviations
                    raise AnalogError("solver failed")
            assert circuit.deviations() == {}

    def test_restores_on_partial_application_failure(self):
        # __enter__ itself fails halfway (unknown element, or a
        # deviation that would drive a value non-positive): nothing
        # may leak.
        rng = random.Random(17)
        circuit, _ = random_ladder(rng, stages=3)
        with pytest.raises(AnalogError):
            with circuit.with_deviations({"Rs0": 0.4, "NOPE": 0.1}):
                pass  # pragma: no cover - never entered
        assert circuit.deviations() == {}
        with pytest.raises(AnalogError):
            with circuit.with_deviations({"Rs0": 0.4, "Rs1": -1.5}):
                pass  # pragma: no cover - never entered
        assert circuit.deviations() == {}

    def test_restores_preexisting_deviation(self):
        rng = random.Random(19)
        circuit, _ = random_ladder(rng, stages=3)
        circuit.set_deviation("Rs0", 0.25)
        with circuit.with_deviations({"Rs0": -0.5, "Rs1": 0.1}):
            assert circuit.deviations()["Rs0"] == -0.5
        assert circuit.deviations() == {"Rs0": 0.25}
        circuit.clear_deviations()

    def test_unit_source_restores_on_failure(self):
        # The factorized engine drives the source at unit amplitude for
        # its whole run; a mid-campaign failure must restore the levels.
        rng = random.Random(23)
        circuit, _ = random_ladder(rng, stages=2)
        source = circuit.component("Vin")
        source.ac, source.dc = 0.7, 2.5
        with pytest.raises(AnalogError):
            with _UnitSource(circuit, "Vin"):
                assert (source.ac, source.dc) == (1.0, 1.0)
                raise AnalogError("solver failed")
        assert (source.ac, source.dc) == (0.7, 2.5)


class TestDrawFaultsClampedSeverity:
    """A clamped fault's severity reflects the deviation actually injected."""

    class _Testable:
        def __init__(self, element, ed_percent):
            self.element = element
            self.ed_percent = ed_percent

    def test_clamped_fault_recomputes_severity(self):
        from repro.analog.faultsim import draw_faults

        # ed = 80 %: a negative draw at severity ≥ 1.1875 crosses the
        # −0.95 clamp, so with the (2.0, 3.0) range every negative draw
        # is clamped and must report severity 0.95 / 0.80 exactly.
        testable = [self._Testable("R1", 80.0)]
        faults = draw_faults(testable, 64, (2.0, 3.0), random.Random(99))
        clamped = [f for f in faults if f.deviation == -0.95]
        assert clamped, "seed produced no negative draws?"
        for fault in clamped:
            assert fault.severity == abs(fault.deviation) / 0.80
        # Unclamped (positive) draws keep their drawn severity range.
        for fault in faults:
            if fault.deviation > 0:
                assert 2.0 <= fault.severity <= 3.0

    def test_rng_stream_unchanged_by_clamp(self):
        from repro.analog.faultsim import draw_faults

        # The clamp consumes no RNG draws: element/deviation streams
        # for a clamp-free population are identical to the historical
        # contract whatever the severity bookkeeping does.
        testable = [self._Testable("R1", 1.0), self._Testable("C2", 2.0)]
        first = draw_faults(testable, 5, (0.5, 3.0), random.Random(11))
        second = draw_faults(testable, 5, (0.5, 3.0), random.Random(11))
        assert [(f.element, f.deviation, f.severity) for f in first] == [
            (f.element, f.deviation, f.severity) for f in second
        ]
        assert all(f.deviation > -0.95 for f in first)  # no clamps here


class TestEmptyPopulationDiagnostics:
    def test_factorized_engine_emits_full_shape(self):
        from repro.analog.faultsim import FactorizedEngine

        engine = FactorizedEngine()
        outcomes = engine.run(object(), [], [], digital_engine="reference")
        assert outcomes == []
        diagnostics = engine.last_diagnostics
        # The exact key set every non-empty run carries: artifact and
        # service consumers key into these without guards.
        assert set(diagnostics) == {
            "engine",
            "digital_engine",
            "batch",
            "batched_gains",
            "backend",
            "hits",
            "misses",
            "size",
            "max_size",
            "solve_calls",
            "multi_rhs_solves",
            "multi_rhs_columns",
        }
        assert diagnostics["engine"] == "factorized"
        assert diagnostics["digital_engine"] == "reference"
        assert diagnostics["backend"] is None
        assert diagnostics["batch"] is True

    def test_empty_population_respects_cache_size_override(self):
        from repro.analog.faultsim import FactorizedEngine

        engine = FactorizedEngine()
        engine.run(object(), [], [], factor_cache_size=7, batch=False)
        assert engine.last_diagnostics["max_size"] == 7
        assert engine.last_diagnostics["batch"] is False

"""Tests for BDD-based combinational equivalence checking."""

import pytest

from repro.digital import (
    Circuit,
    check_equivalent,
    iscas85_like,
    parse_bench,
    simulate,
    write_bench,
)


def and_circuit() -> Circuit:
    c = Circuit("and")
    c.add_input("a")
    c.add_input("b")
    c.and_("y", "a", "b")
    c.add_output("y")
    return c


def demorgan_and() -> Circuit:
    c = Circuit("demorgan")
    c.add_input("a")
    c.add_input("b")
    c.not_("na", "a")
    c.not_("nb", "b")
    c.nor("y", "na", "nb")
    c.add_output("y")
    return c


def or_circuit() -> Circuit:
    c = Circuit("or")
    c.add_input("a")
    c.add_input("b")
    c.or_("y", "a", "b")
    c.add_output("y")
    return c


class TestEquivalent:
    def test_demorgan(self):
        result = check_equivalent(and_circuit(), demorgan_and())
        assert result.equivalent
        assert bool(result)
        assert result.counterexample is None

    def test_iscas_round_trip(self):
        original = iscas85_like("c499")
        reparsed = parse_bench(write_bench(original), name="c499")
        assert check_equivalent(original, reparsed).equivalent


class TestInequivalent:
    def test_counterexample_produced(self):
        result = check_equivalent(and_circuit(), or_circuit())
        assert not result.equivalent
        assert result.failing_output == "y"
        cex = result.counterexample
        left = simulate(and_circuit(), cex)["y"]
        right = simulate(or_circuit(), cex)["y"]
        assert left != right

    def test_interface_mismatch_raises(self):
        other = Circuit("other")
        other.add_input("a")
        other.buf("y", "a")
        other.add_output("y")
        with pytest.raises(ValueError):
            check_equivalent(and_circuit(), other)

    def test_output_mismatch_raises(self):
        other = and_circuit()
        other.buf("z", "y")
        other.add_output("z")
        with pytest.raises(ValueError):
            check_equivalent(and_circuit(), other)

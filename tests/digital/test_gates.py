"""Tests for gate evaluation on parallel pattern words."""

import itertools

import pytest

from repro.digital import GateType, evaluate_gate

TRUTH = {
    GateType.AND: lambda vs: all(vs),
    GateType.NAND: lambda vs: not all(vs),
    GateType.OR: lambda vs: any(vs),
    GateType.NOR: lambda vs: not any(vs),
    GateType.XOR: lambda vs: sum(vs) % 2 == 1,
    GateType.XNOR: lambda vs: sum(vs) % 2 == 0,
}


@pytest.mark.parametrize("gate_type", list(TRUTH))
@pytest.mark.parametrize("arity", [2, 3, 4])
def test_gate_truth_tables(gate_type, arity):
    for bits in itertools.product((0, 1), repeat=arity):
        out = evaluate_gate(gate_type, list(bits), 1)
        assert out == int(TRUTH[gate_type](bits))


def test_not_and_buf():
    assert evaluate_gate(GateType.NOT, [1], 1) == 0
    assert evaluate_gate(GateType.NOT, [0], 1) == 1
    assert evaluate_gate(GateType.BUF, [1], 1) == 1


def test_constants():
    assert evaluate_gate(GateType.CONST0, [], 0b111) == 0
    assert evaluate_gate(GateType.CONST1, [], 0b111) == 0b111


def test_parallel_patterns_word():
    # Patterns: a = 0101, b = 0011 -> AND = 0001, XOR = 0110, NOR = 1000.
    mask = 0b1111
    assert evaluate_gate(GateType.AND, [0b0101, 0b0011], mask) == 0b0001
    assert evaluate_gate(GateType.XOR, [0b0101, 0b0011], mask) == 0b0110
    assert evaluate_gate(GateType.NOR, [0b0101, 0b0011], mask) == 0b1000


def test_complement_respects_mask():
    # NOT over a 3-bit word must not leak bits above the mask.
    assert evaluate_gate(GateType.NOT, [0b010], 0b111) == 0b101


def test_input_gate_has_no_evaluation():
    with pytest.raises(ValueError):
        evaluate_gate(GateType.INPUT, [], 1)

"""Differential suite: the compiled digital engine against the reference.

The compiled, cone-limited, multi-word fault simulator
(:mod:`repro.digital.compiled`) must be *indistinguishable* from the
whole-circuit reference interpreter behind every public signature:
identical detection maps, identical compacted vector lists, identical
coverage curves — on every registry digital circuit and on seeded
random synthesized netlists.

The small circuits run in tier-1; the larger ISCAS-class stand-ins are
marked ``slow`` and run in the differential CI job.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.registry import default_registry
from repro.atpg import random_coverage_curve
from repro.digital import (
    DIGITAL_ENGINES,
    CompiledCircuit,
    compact_vectors,
    coverage,
    fault_simulate,
    fault_universe,
    simulate,
    stem_fault,
)
from repro.digital.compiled import CompiledFaultSimulator, pack_patterns
from repro.digital.faults import Fault, collapse_faults
from repro.digital.synth import SynthSpec, synthesize

#: every digital circuit in the registry; the big ones are slow-marked.
_FAST = ("fig3", "c432")
_REGISTRY_DIGITAL = [
    name
    if name in _FAST
    else pytest.param(name, marks=pytest.mark.slow)
    for name in sorted(default_registry().names("digital"))
]


def _build(name):
    return default_registry().build(name)


def _patterns(circuit, count, seed):
    rng = random.Random(seed)
    return [
        {name: rng.randint(0, 1) for name in circuit.inputs}
        for _ in range(count)
    ]


class TestEngineNames:
    def test_config_mirrors_simulate(self):
        from repro.api.config import DIGITAL_ENGINES as API_ENGINES

        assert tuple(API_ENGINES) == tuple(DIGITAL_ENGINES)

    def test_unknown_engine_rejected(self):
        circuit = _build("fig3")
        with pytest.raises(ValueError, match="unknown digital"):
            fault_simulate(circuit, [], [], engine="quantum")


@pytest.mark.parametrize("name", _REGISTRY_DIGITAL)
class TestRegistryDifferential:
    """Compiled == reference on every registry digital circuit."""

    def test_detection_maps_identical(self, name):
        circuit = _build(name)
        faults = fault_universe(circuit)
        # 100 patterns spans two 64-bit words — the multi-word path.
        patterns = _patterns(circuit, 100, seed=11)
        compiled = fault_simulate(circuit, patterns, faults, engine="compiled")
        reference = fault_simulate(
            circuit, patterns, faults, engine="reference"
        )
        assert compiled == reference

    def test_compacted_vectors_identical(self, name):
        circuit = _build(name)
        faults = collapse_faults(circuit, fault_universe(circuit))
        vectors = _patterns(circuit, 48, seed=23)
        compiled = compact_vectors(circuit, vectors, faults, engine="compiled")
        reference = compact_vectors(
            circuit, vectors, faults, engine="reference"
        )
        assert compiled == reference

    def test_coverage_and_curve_identical(self, name):
        circuit = _build(name)
        faults = collapse_faults(circuit, fault_universe(circuit))
        patterns = _patterns(circuit, 80, seed=5)
        assert coverage(
            circuit, patterns, faults, engine="compiled"
        ) == coverage(circuit, patterns, faults, engine="reference")
        budgets = (1, 10, 40, 80)
        assert random_coverage_curve(
            circuit, faults, budgets, seed=3, patterns=patterns,
            engine="compiled",
        ) == random_coverage_curve(
            circuit, faults, budgets, seed=3, patterns=patterns,
            engine="reference",
        )

    def test_single_pattern_outputs_match_interpreter(self, name):
        circuit = _build(name)
        compiled = CompiledCircuit.compile(circuit)
        rng = random.Random(37)
        for _ in range(8):
            assignment = {n: rng.randint(0, 1) for n in circuit.inputs}
            good = simulate(circuit, assignment)
            assert compiled.evaluate_outputs(assignment) == tuple(
                good[o] for o in circuit.outputs
            )


class TestPropertyRandomNetlists:
    """Seeded random synthesized netlists: engines stay identical."""

    @given(seed=st.integers(0, 2**16 - 1))
    @settings(max_examples=15, deadline=None)
    def test_detection_and_compaction_identical(self, seed):
        spec = SynthSpec(
            f"rand{seed}",
            n_inputs=10,
            n_outputs=4,
            n_gates=48,
            seed=seed,
            xor_fraction=0.15,
        )
        circuit = synthesize(spec)
        faults = fault_universe(circuit)
        # 70 patterns: exercises the partial final word of a 2-word batch.
        patterns = _patterns(circuit, 70, seed=seed ^ 0xBEEF)
        assert fault_simulate(
            circuit, patterns, faults, engine="compiled"
        ) == fault_simulate(circuit, patterns, faults, engine="reference")
        vectors = patterns[:30]
        collapsed = collapse_faults(circuit, faults)
        assert compact_vectors(
            circuit, vectors, collapsed, engine="compiled"
        ) == compact_vectors(circuit, vectors, collapsed, engine="reference")

    @given(seed=st.integers(0, 2**16 - 1))
    @settings(max_examples=10, deadline=None)
    def test_word_size_invariance(self, seed):
        """Batch size never changes what is detected."""
        spec = SynthSpec(
            f"randw{seed}", n_inputs=8, n_outputs=3, n_gates=32, seed=seed
        )
        circuit = synthesize(spec)
        faults = fault_universe(circuit, include_branches=False)
        patterns = _patterns(circuit, 50, seed=seed + 1)
        baseline = fault_simulate(circuit, patterns, faults, word_size=256)
        for word_size in (1, 7, 64, 65):
            assert (
                fault_simulate(circuit, patterns, faults, word_size=word_size)
                == baseline
            )


class TestCompiledEdgeCases:
    def test_fault_on_unknown_line_detects_nothing(self):
        circuit = _build("fig3")
        patterns = _patterns(circuit, 16, seed=1)
        ghost = stem_fault("no-such-line", 1)
        assert fault_simulate(circuit, patterns, [ghost], engine="compiled") == (
            fault_simulate(circuit, patterns, [ghost], engine="reference")
        )

    def test_branch_fault_with_out_of_range_pin(self):
        circuit = _build("fig3")
        patterns = _patterns(circuit, 16, seed=2)
        gate = next(iter(circuit.gates))
        bogus = Fault("l1", 1, gate=gate, pin=99)
        assert fault_simulate(circuit, patterns, [bogus], engine="compiled") == (
            fault_simulate(circuit, patterns, [bogus], engine="reference")
        )

    def test_empty_patterns_detect_nothing(self):
        circuit = _build("fig3")
        faults = fault_universe(circuit, include_branches=False)
        detected = fault_simulate(circuit, [], faults, engine="compiled")
        assert not any(detected.values())

    def test_pack_patterns_round_trip(self):
        circuit = _build("fig3")
        patterns = _patterns(circuit, 70, seed=9)
        words, mask = pack_patterns(circuit.inputs, patterns)
        assert words.shape == (len(circuit.inputs), 2)
        assert int(mask[0]) == (1 << 64) - 1
        assert int(mask[1]) == (1 << 6) - 1
        for i, name in enumerate(circuit.inputs):
            packed = int(words[i, 0]) | (int(words[i, 1]) << 64)
            expected = sum(
                (patterns[b][name] & 1) << b for b in range(len(patterns))
            )
            assert packed == expected

    def test_diagnostics_surface_cone_activity(self):
        circuit = _build("c432")
        faults = fault_universe(circuit)[:50]
        patterns = _patterns(circuit, 96, seed=4)
        simulator = CompiledFaultSimulator(circuit)
        simulator.fault_simulate(patterns, faults)
        diag = simulator.last_diagnostics
        assert diag is not None and diag.engine == "compiled"
        assert diag.n_batches == 1
        assert diag.cone_gates_total > 0
        # Cone limiting means far fewer evaluations than |faults|·|gates|.
        assert diag.gates_evaluated < len(faults) * diag.n_gates
        document = diag.as_dict()
        assert document["engine"] == "compiled"
        assert document["word_size"] == 256

    def test_compilation_cache_invalidates_on_growth(self):
        circuit = _build("fig3")
        first = CompiledCircuit.compile(circuit)
        assert CompiledCircuit.compile(circuit) is first
        grown = circuit.copy()
        grown.not_("extra", circuit.inputs[0])
        assert CompiledCircuit.compile(grown) is not first

    def test_compilation_cache_invalidates_on_interface_change(self):
        # The compiled form bakes in the output list: marking a new
        # output must recompile, and detection through the new output
        # must match the reference interpreter.
        circuit = _build("fig3")
        first = CompiledCircuit.compile(circuit)
        gate = circuit.topological_order()[0]
        circuit.add_output(gate)
        assert CompiledCircuit.compile(circuit) is not first
        faults = [stem_fault(gate, 0), stem_fault(gate, 1)]
        patterns = _patterns(circuit, 16, seed=6)
        assert fault_simulate(
            circuit, patterns, faults, engine="compiled"
        ) == fault_simulate(circuit, patterns, faults, engine="reference")

"""Tests for logic and fault simulation."""

import itertools
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.digital import (
    branch_fault,
    compact_vectors,
    coverage,
    fault_simulate,
    fault_universe,
    ripple_adder,
    simulate,
    simulate_patterns,
    simulate_with_fault,
    stem_fault,
)
from repro.digital.library import fig3_circuit


class TestGoodSimulation:
    def test_adder_exhaustive(self):
        adder = ripple_adder(3)
        for a in range(8):
            for b in range(8):
                for cin in (0, 1):
                    assignment = {"CIN": cin}
                    for i in range(3):
                        assignment[f"A{i}"] = (a >> i) & 1
                        assignment[f"B{i}"] = (b >> i) & 1
                    values = simulate(adder, assignment)
                    total = sum(values[f"S{i}"] << i for i in range(3))
                    total |= values["COUT"] << 3
                    assert total == a + b + cin

    @given(st.integers(0, 2**8 - 1), st.integers(1, 8))
    @settings(max_examples=50, deadline=None)
    def test_parallel_equals_serial(self, word_bits, n_patterns):
        circuit = fig3_circuit()
        rng = random.Random(word_bits)
        patterns = [
            {name: rng.randint(0, 1) for name in circuit.inputs}
            for _ in range(n_patterns)
        ]
        words = {
            name: sum(
                (patterns[i][name] & 1) << i for i in range(n_patterns)
            )
            for name in circuit.inputs
        }
        parallel = simulate_patterns(circuit, words, n_patterns)
        for i, pattern in enumerate(patterns):
            serial = simulate(circuit, pattern)
            for signal, word in parallel.items():
                assert (word >> i) & 1 == serial[signal]


class TestFaultSimulation:
    def test_stem_fault_forces_value(self):
        circuit = fig3_circuit()
        fault = stem_fault("l3", 1)
        values = simulate_with_fault(
            circuit, {name: 0 for name in circuit.inputs}, 1, fault
        )
        assert values["l3"] == 1

    def test_input_stem_fault(self):
        circuit = fig3_circuit()
        fault = stem_fault("l1", 1)
        values = simulate_with_fault(
            circuit, {name: 0 for name in circuit.inputs}, 1, fault
        )
        assert values["l1"] == 1

    def test_branch_fault_affects_single_pin(self):
        # l1 fans out to l5 (AND) and l6 (XOR); fault only the XOR pin.
        circuit = fig3_circuit()
        fault = branch_fault("l1", "l6", 0, 1)
        inputs = {"l0": 0, "l1": 0, "l2": 0, "l4": 0}
        values = simulate_with_fault(circuit, inputs, 1, fault)
        good = simulate(circuit, inputs)
        assert values["l6"] != good["l6"]  # the faulted branch changed
        assert values["l5"] == good["l5"]  # the other branch did not

    def test_detection_flags(self):
        circuit = fig3_circuit()
        faults = fault_universe(circuit, include_branches=False)
        patterns = [
            dict(zip(circuit.inputs, bits))
            for bits in itertools.product((0, 1), repeat=4)
        ]
        detected = fault_simulate(circuit, patterns, faults)
        # Exhaustive patterns detect every fault of this testable circuit.
        assert all(detected.values())

    def test_no_patterns_detect_nothing(self):
        circuit = fig3_circuit()
        faults = fault_universe(circuit, include_branches=False)
        detected = fault_simulate(circuit, [], faults)
        assert not any(detected.values())


class TestCompaction:
    def test_compaction_keeps_coverage(self):
        circuit = fig3_circuit()
        faults = fault_universe(circuit, include_branches=False)
        patterns = [
            dict(zip(circuit.inputs, bits))
            for bits in itertools.product((0, 1), repeat=4)
        ]
        compacted = compact_vectors(circuit, patterns, faults)
        assert len(compacted) < len(patterns)
        assert coverage(circuit, compacted, faults) == 1.0

    def test_coverage_of_empty_fault_list(self):
        circuit = fig3_circuit()
        assert coverage(circuit, [], []) == 1.0

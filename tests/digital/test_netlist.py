"""Tests for the combinational netlist container."""

import pytest

from repro.digital import Circuit, GateType, NetlistError


def small_circuit() -> Circuit:
    c = Circuit("small")
    c.add_input("a")
    c.add_input("b")
    c.and_("g1", "a", "b")
    c.not_("g2", "g1")
    c.add_output("g2")
    return c


class TestConstruction:
    def test_builder_methods(self):
        c = small_circuit()
        assert c.inputs == ["a", "b"]
        assert c.outputs == ["g2"]
        assert c.gates["g1"].gate_type is GateType.AND

    def test_duplicate_input_rejected(self):
        c = Circuit("x")
        c.add_input("a")
        with pytest.raises(NetlistError):
            c.add_input("a")

    def test_double_driver_rejected(self):
        c = small_circuit()
        with pytest.raises(NetlistError):
            c.and_("g1", "a", "b")

    def test_driving_an_input_rejected(self):
        c = small_circuit()
        with pytest.raises(NetlistError):
            c.not_("a", "b")

    def test_gate_arity_enforced(self):
        c = Circuit("x")
        c.add_input("a")
        with pytest.raises(NetlistError):
            c.add_gate("g", GateType.NOT, ("a", "a"))
        with pytest.raises(NetlistError):
            c.add_gate("g", GateType.AND, ("a",))

    def test_string_gate_type_accepted(self):
        c = Circuit("x")
        c.add_input("a")
        c.add_input("b")
        c.add_gate("g", "nand", ("a", "b"))
        assert c.gates["g"].gate_type is GateType.NAND


class TestStructure:
    def test_topological_order_respects_dependencies(self):
        c = small_circuit()
        topo = c.topological_order()
        assert topo.index("g1") < topo.index("g2")

    def test_cycle_detected(self):
        c = Circuit("cyc")
        c.add_input("a")
        c.and_("g1", "a", "g2")
        c.and_("g2", "a", "g1")
        with pytest.raises(NetlistError):
            c.topological_order()

    def test_missing_driver_detected(self):
        c = Circuit("bad")
        c.add_input("a")
        c.and_("g1", "a", "ghost")
        with pytest.raises(NetlistError):
            c.validate()

    def test_unknown_output_detected(self):
        c = small_circuit()
        c.outputs.append("ghost")
        with pytest.raises(NetlistError):
            c.validate()

    def test_fanout_map(self):
        c = small_circuit()
        fanout = c.fanout_map()
        assert fanout["g1"] == [("g2", 0)]
        assert fanout["a"] == [("g1", 0)]
        assert fanout["g2"] == []

    def test_fanin_view(self):
        c = small_circuit()
        assert c.fanin_view()["g1"] == ("a", "b")

    def test_stats(self):
        stats = small_circuit().stats()
        assert stats == {"inputs": 2, "outputs": 1, "gates": 2, "lines": 4}

    def test_signals_inputs_first(self):
        c = small_circuit()
        signals = c.signals()
        assert signals[:2] == ["a", "b"]
        assert set(signals) == {"a", "b", "g1", "g2"}

    def test_topo_cache_invalidated_on_growth(self):
        c = small_circuit()
        first = c.topological_order()
        c.buf("g3", "g2")
        second = c.topological_order()
        assert "g3" in second and "g3" not in first


class TestCopies:
    def test_copy_is_independent(self):
        c = small_circuit()
        dup = c.copy("dup")
        dup.buf("g3", "g2")
        assert "g3" not in c.gates
        assert dup.name == "dup"

    def test_renamed_prefixes_everything(self):
        c = small_circuit()
        renamed = c.renamed("u_")
        assert renamed.inputs == ["u_a", "u_b"]
        assert renamed.outputs == ["u_g2"]
        assert renamed.gates["u_g1"].fanins == ("u_a", "u_b")
        renamed.validate()

    def test_evaluate_delegates_to_simulator(self):
        c = small_circuit()
        values = c.evaluate({"a": 1, "b": 1})
        assert values["g2"] == 0

"""Tests for the hand-written library circuits."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.digital import (
    alu_slice,
    fig3_circuit,
    magnitude_comparator,
    mux_tree,
    parity_tree,
    ripple_adder,
    simulate,
)


class TestFig3:
    def test_shape(self):
        c = fig3_circuit()
        assert c.inputs == ["l0", "l1", "l2", "l4"]
        assert c.outputs == ["Vo1", "Vo2"]
        assert len(c.gates) == 5  # 9 lines total

    def test_function(self):
        c = fig3_circuit()
        for bits in itertools.product((0, 1), repeat=4):
            l0, l1, l2, l4 = bits
            values = simulate(c, {"l0": l0, "l1": l1, "l2": l2, "l4": l4})
            l3 = int(not (l0 or l2))
            assert values["Vo1"] == ((l3 and l1) or l4)
            assert values["Vo2"] == ((l1 ^ l2) and l0)


class TestAdder:
    @given(st.integers(0, 15), st.integers(0, 15), st.integers(0, 1))
    @settings(max_examples=60, deadline=None)
    def test_addition(self, a, b, cin):
        adder = ripple_adder(4)
        assignment = {"CIN": cin}
        for i in range(4):
            assignment[f"A{i}"] = (a >> i) & 1
            assignment[f"B{i}"] = (b >> i) & 1
        values = simulate(adder, assignment)
        total = sum(values[f"S{i}"] << i for i in range(4))
        total |= values["COUT"] << 4
        assert total == a + b + cin


class TestMux:
    def test_mux_selects(self):
        mux = mux_tree(2)
        for select in range(4):
            for data_word in (0b1010, 0b0110):
                assignment = {
                    f"D{i}": (data_word >> i) & 1 for i in range(4)
                }
                assignment["S0"] = select & 1
                assignment["S1"] = (select >> 1) & 1
                values = simulate(mux, assignment)
                assert values["Y"] == (data_word >> select) & 1


class TestParity:
    @given(st.integers(0, 2**10 - 1))
    @settings(max_examples=40, deadline=None)
    def test_parity(self, word):
        tree = parity_tree(10)
        assignment = {f"X{i}": (word >> i) & 1 for i in range(10)}
        values = simulate(tree, assignment)
        assert values["PAR"] == bin(word).count("1") % 2

    def test_odd_width(self):
        tree = parity_tree(5)
        values = simulate(tree, {f"X{i}": 1 for i in range(5)})
        assert values["PAR"] == 1


class TestComparator:
    @given(st.integers(0, 15), st.integers(0, 15))
    @settings(max_examples=60, deadline=None)
    def test_greater_than(self, a, b):
        cmp4 = magnitude_comparator(4)
        assignment = {}
        for i in range(4):
            assignment[f"A{i}"] = (a >> i) & 1
            assignment[f"B{i}"] = (b >> i) & 1
        values = simulate(cmp4, assignment)
        assert values["GT"] == int(a > b)


class TestAluSlice:
    def test_all_operations(self):
        alu = alu_slice()
        expected = {
            (0, 0): lambda a, b, c: a & b,
            (0, 1): lambda a, b, c: a | b,
            (1, 0): lambda a, b, c: a ^ b,
            (1, 1): lambda a, b, c: (a ^ b) ^ c,
        }
        for (op1, op0), fn in expected.items():
            for a, b, cin in itertools.product((0, 1), repeat=3):
                values = simulate(
                    alu,
                    {"A": a, "B": b, "CIN": cin, "OP0": op0, "OP1": op1},
                )
                assert values["Y"] == fn(a, b, cin)
                assert values["COUT"] == int(a + b + cin >= 2)

"""Tests for the stuck-at fault model and collapsing."""

import itertools

from repro.digital import (
    Circuit,
    checkpoint_faults,
    collapse_faults,
    fault_simulate,
    fault_universe,
    stem_fault,
)
from repro.digital.library import fig3_circuit


class TestUniverse:
    def test_stem_only_count(self):
        circuit = fig3_circuit()  # 9 lines
        faults = fault_universe(circuit, include_branches=False)
        assert len(faults) == 18  # the paper's Example 2 count

    def test_branches_added_for_fanout(self):
        circuit = fig3_circuit()
        with_branches = fault_universe(circuit, include_branches=True)
        stems_only = fault_universe(circuit, include_branches=False)
        # l0, l1, l2 fan out to two gates each -> 3 signals x 2 branches x 2.
        assert len(with_branches) == len(stems_only) + 12

    def test_fault_str(self):
        assert str(stem_fault("x", 0)) == "x s-a-0"
        faults = fault_universe(fig3_circuit(), include_branches=True)
        branch = next(f for f in faults if not f.is_stem)
        assert "->" in str(branch)


class TestCollapsing:
    def test_collapsed_smaller(self):
        circuit = fig3_circuit()
        universe = fault_universe(circuit)
        collapsed = collapse_faults(circuit, universe)
        assert 0 < len(collapsed) < len(universe)

    def test_collapsing_preserves_detectability(self):
        # A test set detecting all collapsed faults detects the universe.
        circuit = fig3_circuit()
        universe = fault_universe(circuit)
        collapsed = collapse_faults(circuit, universe)
        patterns = [
            dict(zip(circuit.inputs, bits))
            for bits in itertools.product((0, 1), repeat=4)
        ]
        universe_hits = fault_simulate(circuit, patterns, universe)
        collapsed_hits = fault_simulate(circuit, patterns, collapsed)
        assert all(collapsed_hits.values())
        assert all(universe_hits.values())

    def test_inverter_chain_collapses_hard(self):
        c = Circuit("chain")
        c.add_input("a")
        c.not_("n1", "a")
        c.not_("n2", "n1")
        c.buf("n3", "n2")
        c.add_output("n3")
        universe = fault_universe(c)
        collapsed = collapse_faults(c, universe)
        # 4 lines x 2 = 8 faults, all equivalent pairwise through the
        # chain: only 2 classes remain.
        assert len(universe) == 8
        assert len(collapsed) == 2

    def test_and_gate_input_sa0_merges_with_output(self):
        c = Circuit("and")
        c.add_input("a")
        c.add_input("b")
        c.and_("g", "a", "b")
        c.add_output("g")
        collapsed = collapse_faults(c, fault_universe(c))
        # 6 faults -> {a0,b0,g0} merge: 4 classes.
        assert len(collapsed) == 4


class TestCheckpoints:
    def test_checkpoints_of_fanout_free_circuit_are_inputs(self):
        c = Circuit("tree")
        c.add_input("a")
        c.add_input("b")
        c.and_("g", "a", "b")
        c.add_output("g")
        checkpoints = checkpoint_faults(c)
        assert {f.line for f in checkpoints} == {"a", "b"}

    def test_checkpoints_include_branches(self):
        circuit = fig3_circuit()
        checkpoints = checkpoint_faults(circuit)
        branch_lines = {f.line for f in checkpoints if not f.is_stem}
        assert branch_lines == {"l0", "l1", "l2"}

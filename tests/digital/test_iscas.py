"""Tests for the ISCAS85 .bench parser and writer."""

import pytest

from repro.digital import (
    NetlistError,
    iscas85_like,
    parse_bench,
    simulate,
    write_bench,
)

C17_TEXT = """
# c17 (the classic 5-input benchmark)
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
"""


class TestParsing:
    def test_c17_shape(self):
        c = parse_bench(C17_TEXT, name="c17")
        assert len(c.inputs) == 5
        assert len(c.outputs) == 2
        assert len(c.gates) == 6

    def test_c17_function(self):
        c = parse_bench(C17_TEXT)
        values = simulate(c, {"G1": 1, "G2": 0, "G3": 1, "G6": 1, "G7": 0})
        # G10 = !(1&1)=0, G11 = !(1&1)=0, G16 = !(0&0)=1, G19 = !(0&0)=1,
        # G22 = !(0&1)=1, G23 = !(1&1)=0.
        assert values["G22"] == 1
        assert values["G23"] == 0

    def test_comments_and_blanks_ignored(self):
        text = "# hello\n\nINPUT(a)\nOUTPUT(b)\nb = NOT(a)  # inline\n"
        c = parse_bench(text)
        assert c.inputs == ["a"]

    def test_buff_alias(self):
        c = parse_bench("INPUT(a)\nOUTPUT(b)\nb = BUFF(a)\n")
        assert simulate(c, {"a": 1})["b"] == 1

    def test_single_input_and_treated_as_buffer(self):
        c = parse_bench("INPUT(a)\nOUTPUT(b)\nb = AND(a)\n")
        assert simulate(c, {"a": 1})["b"] == 1

    def test_unknown_gate_rejected(self):
        with pytest.raises(NetlistError):
            parse_bench("INPUT(a)\nb = FROB(a)\n")

    def test_garbage_line_rejected(self):
        with pytest.raises(NetlistError):
            parse_bench("this is not a bench line")


class TestRoundTrip:
    def test_write_then_parse(self):
        original = parse_bench(C17_TEXT, name="c17")
        text = write_bench(original)
        reparsed = parse_bench(text, name="c17")
        assert reparsed.inputs == original.inputs
        assert reparsed.outputs == original.outputs
        assert set(reparsed.gates) == set(original.gates)

    def test_synthetic_round_trip(self):
        original = iscas85_like("c432")
        reparsed = parse_bench(write_bench(original), name="c432")
        # Same function on a sample of vectors.
        import random

        rng = random.Random(1)
        for _ in range(16):
            vector = {name: rng.randint(0, 1) for name in original.inputs}
            a = simulate(original, vector)
            b = simulate(reparsed, vector)
            for out in original.outputs:
                assert a[out] == b[out]

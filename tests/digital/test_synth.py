"""Tests for the synthetic benchmark generator."""

import pytest

from repro.digital import (
    ISCAS85_SPECS,
    SynthSpec,
    iscas85_like,
    synthesize,
)


class TestDeterminism:
    def test_same_seed_same_circuit(self):
        a = synthesize(ISCAS85_SPECS["c432"])
        b = synthesize(ISCAS85_SPECS["c432"])
        assert a.inputs == b.inputs
        assert a.outputs == b.outputs
        assert {g.output: g.fanins for g in a.gates.values()} == {
            g.output: g.fanins for g in b.gates.values()
        }

    def test_different_seed_different_circuit(self):
        spec = ISCAS85_SPECS["c432"]
        other = SynthSpec(
            spec.name, spec.n_inputs, spec.n_outputs, spec.n_gates,
            seed=spec.seed + 1,
        )
        a, b = synthesize(spec), synthesize(other)
        assert {g.output: g.fanins for g in a.gates.values()} != {
            g.output: g.fanins for g in b.gates.values()
        }


class TestInterfaces:
    @pytest.mark.parametrize(
        "name, n_pi, n_po",
        [("c432", 36, 7), ("c499", 41, 32), ("c880", 60, 26),
         ("c1355", 41, 32), ("c1908", 33, 25)],
    )
    def test_paper_interfaces_match(self, name, n_pi, n_po):
        c = iscas85_like(name)
        assert len(c.inputs) == n_pi  # the paper's Table 4 #PI
        assert len(c.outputs) == n_po  # the paper's Table 4 #PO

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            iscas85_like("c9999")


class TestStructure:
    @pytest.mark.parametrize("name", list(ISCAS85_SPECS))
    def test_valid_dag(self, name):
        c = iscas85_like(name)
        c.validate()

    @pytest.mark.parametrize("name", ["c432", "c880"])
    def test_every_gate_observable(self, name):
        # The collector phase must leave no dead logic.
        c = iscas85_like(name)
        reached: set[str] = set()
        stack = list(c.outputs)
        while stack:
            signal = stack.pop()
            if signal in reached:
                continue
            reached.add(signal)
            gate = c.gates.get(signal)
            if gate:
                stack.extend(gate.fanins)
        assert set(c.gates) <= reached

    @pytest.mark.parametrize("name", ["c432", "c880"])
    def test_every_input_used(self, name):
        c = iscas85_like(name)
        used = {src for g in c.gates.values() for src in g.fanins}
        assert set(c.inputs) <= used

    def test_outputs_distinct(self):
        c = iscas85_like("c1355")
        assert len(set(c.outputs)) == len(c.outputs)

"""Cross-stack integration properties.

The strongest correctness argument in the repository: for seeded random
circuits, the algebraic BDD test generator and the brute-force fault
simulator must agree *exactly* — every produced vector detects its
fault, and every untestability verdict survives exhaustive enumeration.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.atpg import TestStatus, run_atpg
from repro.digital import (
    SynthSpec,
    fault_simulate,
    fault_universe,
    synthesize,
)


class TestAtpgAgainstExhaustiveSimulation:
    @given(st.integers(0, 10_000))
    @settings(max_examples=12, deadline=None)
    def test_verdicts_match_brute_force(self, seed):
        spec = SynthSpec(
            f"rand{seed}", n_inputs=6, n_outputs=3, n_gates=18, seed=seed
        )
        circuit = synthesize(spec)
        faults = fault_universe(circuit, include_branches=False)
        run = run_atpg(circuit, faults=faults, compact=False)

        all_patterns = [
            dict(zip(circuit.inputs, bits))
            for bits in itertools.product((0, 1), repeat=6)
        ]
        exhaustive = fault_simulate(circuit, all_patterns, faults)
        for result in run.results:
            brute_detectable = exhaustive[result.fault]
            algebraic_detectable = result.status is TestStatus.DETECTED
            assert algebraic_detectable == brute_detectable, str(result.fault)
            if result.vector is not None:
                hit = fault_simulate(circuit, [result.vector], [result.fault])
                assert hit[result.fault]


class TestConstraintSoundness:
    @given(st.integers(0, 10_000))
    @settings(max_examples=8, deadline=None)
    def test_constrained_verdicts_sound(self, seed):
        # Under a thermometer constraint on 3 inputs, a fault is declared
        # untestable iff no *allowed* pattern detects it.
        from repro.conversion import constraint_for_lines, thermometer_terms

        spec = SynthSpec(
            f"randc{seed}", n_inputs=6, n_outputs=2, n_gates=14, seed=seed
        )
        circuit = synthesize(spec)
        lines = circuit.inputs[:3]
        faults = fault_universe(circuit, include_branches=False)
        run = run_atpg(
            circuit,
            faults=faults,
            constraint=constraint_for_lines(lines),
            compact=False,
        )
        free = [name for name in circuit.inputs if name not in lines]
        allowed_patterns = []
        for term in thermometer_terms(lines):
            for bits in itertools.product((0, 1), repeat=len(free)):
                pattern = dict(term)
                pattern.update(zip(free, bits))
                allowed_patterns.append(pattern)
        exhaustive = fault_simulate(circuit, allowed_patterns, faults)
        for result in run.results:
            algebraic = result.status is TestStatus.DETECTED
            assert algebraic == exhaustive[result.fault], str(result.fault)


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.1.0"

    def test_top_level_exports(self):
        assert hasattr(repro, "MixedSignalTestGenerator")
        assert hasattr(repro, "MixedSignalCircuit")
        assert hasattr(repro, "StateVariableBoard")
        # the unified workbench API
        assert hasattr(repro, "Workbench")
        assert hasattr(repro, "TestSession")
        assert hasattr(repro, "Artifact")
        assert hasattr(repro, "GeneratorConfig")

    def test_all_submodules_importable(self):
        import importlib

        for name in (
            "bdd", "digital", "atpg", "spice", "analog", "conversion",
            "circuits", "core", "experiments", "api",
        ):
            module = importlib.import_module(f"repro.{name}")
            assert hasattr(module, "__all__") or name == "experiments"

"""Property-based tests of the conversion block."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.conversion import FlashAdc, thermometer_terms


class TestFlashProperties:
    @given(
        st.floats(min_value=-1.0, max_value=6.0),
        st.floats(min_value=-1.0, max_value=6.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_monotone_code(self, v1, v2):
        adc = FlashAdc()
        low, high = sorted((v1, v2))
        assert adc.code(low) <= adc.code(high)

    @given(st.floats(min_value=-1.0, max_value=6.0))
    @settings(max_examples=60, deadline=None)
    def test_output_is_thermometer(self, v):
        adc = FlashAdc()
        code = adc.convert(v)
        # No 0 -> 1 transition going up the ladder.
        assert all(a >= b for a, b in zip(code, code[1:]))

    @given(
        st.lists(
            st.floats(min_value=100.0, max_value=10_000.0),
            min_size=8, max_size=8,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_arbitrary_ladder_monotone_taps(self, resistors):
        adc = FlashAdc(n_comparators=7, resistor_values=resistors)
        taps = adc.thresholds()
        assert all(a < b for a, b in zip(taps, taps[1:]))
        assert all(0 < t < adc.v_top for t in taps)

    @given(
        st.floats(min_value=-0.5, max_value=2.0),
        st.integers(min_value=0, max_value=15),
    )
    @settings(max_examples=60, deadline=None)
    def test_deviation_preserves_thermometer(self, deviation, resistor):
        adc = FlashAdc()
        name = f"R{resistor + 1}"
        with adc.with_deviations({name: deviation}):
            code = adc.convert(2.5)
            assert all(a >= b for a, b in zip(code, code[1:]))


class TestTermProperties:
    @given(st.integers(min_value=1, max_value=12))
    @settings(max_examples=20, deadline=None)
    def test_term_count(self, width):
        lines = [f"t{i}" for i in range(width)]
        terms = thermometer_terms(lines)
        assert len(terms) == width + 1
        # All terms distinct and valid thermometer codes.
        seen = set()
        for term in terms:
            bits = tuple(term[line] for line in lines)
            assert all(a >= b for a, b in zip(bits, bits[1:]))
            seen.add(bits)
        assert len(seen) == width + 1

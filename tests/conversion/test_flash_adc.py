"""Tests for the flash ADC model (cross-validated against MNA)."""

import pytest

from repro.conversion import FlashAdc
from repro.spice import MnaSolver


class TestThresholds:
    def test_uniform_ladder_taps(self):
        adc = FlashAdc(n_comparators=4, v_top=5.0)
        assert adc.thresholds() == pytest.approx([1.0, 2.0, 3.0, 4.0])

    def test_monotone_thresholds(self):
        adc = FlashAdc()
        taps = adc.thresholds()
        assert all(a < b for a, b in zip(taps, taps[1:]))

    def test_resistor_count_enforced(self):
        with pytest.raises(ValueError):
            FlashAdc(n_comparators=4, resistor_values=[1000.0] * 4)

    def test_analytic_matches_mna(self):
        # The closed-form taps must agree with a real ladder solve.
        adc = FlashAdc(n_comparators=7, v_top=5.0)
        adc.set_deviation("R3", 0.3)
        circuit = adc.as_circuit()
        solution = MnaSolver(circuit).solve_dc()
        for index, expected in enumerate(adc.thresholds()):
            measured = solution.voltage(f"t{index + 1}").real
            # The solver's GMIN (1e-12 S to ground) perturbs at ~1e-9.
            assert measured == pytest.approx(expected, rel=1e-6)


class TestConversion:
    def test_thermometer_codes(self):
        adc = FlashAdc(n_comparators=4, v_top=5.0)
        assert adc.convert(0.5) == (0, 0, 0, 0)
        assert adc.convert(2.5) == (1, 1, 0, 0)
        assert adc.convert(9.9) == (1, 1, 1, 1)

    def test_code_counts_ones(self):
        adc = FlashAdc(n_comparators=15)
        assert adc.code(adc.v_top) == 15
        assert adc.code(0.0) == 0

    def test_output_names(self):
        adc = FlashAdc(n_comparators=3)
        assert adc.output_names("x") == ["x0", "x1", "x2"]


class TestDeviations:
    def test_deviation_shifts_taps(self):
        adc = FlashAdc(n_comparators=4, v_top=5.0)
        nominal = adc.thresholds()
        adc.set_deviation("R1", 1.0)  # bottom resistor doubles
        shifted = adc.thresholds()
        assert all(s > n for s, n in zip(shifted, nominal))

    def test_with_deviations_scope(self):
        adc = FlashAdc(n_comparators=4)
        nominal = adc.threshold(0)
        with adc.with_deviations({"R1": 0.5}):
            assert adc.threshold(0) != nominal
        assert adc.threshold(0) == nominal

    def test_unknown_resistor_rejected(self):
        with pytest.raises(ValueError):
            FlashAdc(n_comparators=2).set_deviation("R99", 0.1)

    def test_clear_deviations(self):
        adc = FlashAdc(n_comparators=2)
        adc.set_deviation("R1", 0.5)
        adc.clear_deviations()
        assert adc.thresholds() == pytest.approx([5.0 / 3, 10.0 / 3])

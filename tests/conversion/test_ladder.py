"""Tests for ladder element testing (Tables 6/7 machinery)."""

import math

import pytest

from repro.conversion import (
    FlashAdc,
    constrained_ladder_coverage,
    ladder_coverage,
    tap_sensitivity,
)
from repro.conversion.ladder_test import tap_element_map, tap_metric


class TestSensitivity:
    def test_matches_finite_difference(self):
        adc = FlashAdc(n_comparators=7)
        step = 1e-6
        for tap in range(7):
            for res in range(8):
                nominal = tap_metric(adc, tap)
                name = f"R{res + 1}"
                with adc.with_deviations({name: step}):
                    shifted = tap_metric(adc, tap)
                numeric = (shifted - nominal) / (nominal * step)
                analytic = tap_sensitivity(adc, tap, res)
                assert numeric == pytest.approx(analytic, abs=1e-4), (tap, res)

    def test_bottom_tap_dominated_by_bottom_resistor(self):
        adc = FlashAdc(n_comparators=15)
        s_own = abs(tap_sensitivity(adc, 0, 0))
        s_far = abs(tap_sensitivity(adc, 0, 10))
        assert s_own > 5 * s_far


class TestElementMap:
    def test_paper_mapping(self):
        mapping = tap_element_map(15)
        assert mapping[0] == (0,)  # Vt1 -> R1
        assert mapping[6] == (6,)  # Vt7 -> R7
        assert mapping[7] == (7, 8)  # Vt8 -> R8,R9 (merged middle)
        assert mapping[8] == (9,)  # Vt9 -> R10
        assert mapping[14] == (15,)  # Vt15 -> R16

    def test_even_count_no_merge(self):
        mapping = tap_element_map(4)
        assert all(len(entry) == 1 for entry in mapping)


class TestCoverage:
    def test_tent_shape(self):
        coverage = ladder_coverage(FlashAdc())
        eds = coverage.ed_percent
        middle = len(eds) // 2
        assert eds[middle] == max(eds)
        assert eds[0] == min(eds)

    def test_symmetry(self):
        eds = ladder_coverage(FlashAdc()).ed_percent
        for left, right in zip(eds, reversed(eds)):
            assert left == pytest.approx(right, rel=0.02)

    def test_rows_render(self):
        coverage = ladder_coverage(FlashAdc(n_comparators=3))
        rows = coverage.rows()
        assert len(rows) == 3
        assert rows[0][0] == "Vt1"

    def test_observable_mask_dashes(self):
        coverage = ladder_coverage(
            FlashAdc(n_comparators=5), observable=[True, False, True, True, True]
        )
        assert coverage.elements[1] == "-"
        assert math.isinf(coverage.ed_percent[1])


class TestConstrainedCoverage:
    def test_all_observable_matches_direct(self):
        adc = FlashAdc()
        direct = ladder_coverage(adc)
        constrained = constrained_ladder_coverage(adc, lambda i: True)
        assert constrained.ed_percent == pytest.approx(direct.ed_percent)

    def test_blocked_tap_merges_into_neighbour(self):
        adc = FlashAdc()
        constrained = constrained_ladder_coverage(adc, lambda i: i != 1)
        assert constrained.elements[1] == "-"
        assert math.isinf(constrained.ed_percent[1])
        # The neighbour now carries R2 as well, with looser coverage.
        merged_cells = [e for e in constrained.elements if "R2" in e.split(",")]
        assert merged_cells
        direct = ladder_coverage(adc)
        neighbour = constrained.elements.index(merged_cells[0])
        assert constrained.ed_percent[neighbour] >= direct.ed_percent[neighbour]

    def test_nothing_observable(self):
        adc = FlashAdc(n_comparators=3)
        constrained = constrained_ladder_coverage(adc, lambda i: False)
        assert all(math.isinf(ed) for ed in constrained.ed_percent)

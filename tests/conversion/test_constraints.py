"""Tests for conversion-block constraint functions."""

import pytest

from repro.bdd import BddManager, TRUE
from repro.conversion import (
    constraint_for_lines,
    pair_exclusion_constraint,
    random_line_assignment,
    thermometer_constraint,
    thermometer_terms,
)


class TestThermometer:
    def test_sat_count_is_k_plus_one(self):
        lines = ["t0", "t1", "t2", "t3"]
        mgr = BddManager(lines)
        fc = thermometer_constraint(mgr, lines)
        assert mgr.sat_count(fc) == 5  # 4 lines -> 5 codes

    def test_valid_codes_accepted(self):
        lines = ["t0", "t1", "t2"]
        mgr = BddManager(lines)
        fc = thermometer_constraint(mgr, lines)
        assert mgr.evaluate(fc, {"t0": 1, "t1": 1, "t2": 0}) == 1
        assert mgr.evaluate(fc, {"t0": 0, "t1": 0, "t2": 0}) == 1

    def test_invalid_codes_rejected(self):
        lines = ["t0", "t1", "t2"]
        mgr = BddManager(lines)
        fc = thermometer_constraint(mgr, lines)
        assert mgr.evaluate(fc, {"t0": 0, "t1": 1, "t2": 0}) == 0
        assert mgr.evaluate(fc, {"t0": 1, "t1": 0, "t2": 1}) == 0

    def test_single_line_unconstrained(self):
        mgr = BddManager(["t0"])
        assert thermometer_constraint(mgr, ["t0"]) == TRUE

    def test_terms_match_bdd(self):
        lines = ["a", "b", "c"]
        mgr = BddManager(lines)
        fc = thermometer_constraint(mgr, lines)
        for term in thermometer_terms(lines):
            assert mgr.evaluate(fc, term) == 1
        assert len(thermometer_terms(lines)) == 4

    def test_builder_for_run_atpg(self):
        builder = constraint_for_lines(["a", "b"])
        mgr = BddManager(["a", "b"])
        fc = builder(mgr)
        assert mgr.sat_count(fc) == 3


class TestRandomAssignment:
    def test_deterministic(self):
        names = [f"I{i}" for i in range(40)]
        assert random_line_assignment(names, 15, seed=7) == (
            random_line_assignment(names, 15, seed=7)
        )

    def test_distinct_lines(self):
        names = [f"I{i}" for i in range(40)]
        chosen = random_line_assignment(names, 15, seed=3)
        assert len(set(chosen)) == 15
        assert set(chosen) <= set(names)

    def test_too_many_rejected(self):
        with pytest.raises(ValueError):
            random_line_assignment(["a"], 2, seed=1)


class TestPairExclusion:
    def test_both_zero_unreachable(self):
        builder = pair_exclusion_constraint("l0", "l2")
        mgr = BddManager(["l0", "l2"])
        fc = builder(mgr)
        assert mgr.evaluate(fc, {"l0": 0, "l2": 0}) == 0
        assert mgr.evaluate(fc, {"l0": 1, "l2": 0}) == 1
        assert mgr.sat_count(fc) == 3

"""Tests for the thermometer encoders and the behavioural ADC."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.conversion import BehaviouralAdc, popcount_encoder, transition_encoder
from repro.digital import simulate


class TestPopcount:
    @pytest.mark.parametrize("width", [3, 7, 15])
    def test_counts_thermometer_codes(self, width):
        encoder = popcount_encoder(width)
        n_bits = len(encoder.outputs)
        for level in range(width + 1):
            assignment = {
                f"T{i}": 1 if i < level else 0 for i in range(width)
            }
            values = simulate(encoder, assignment)
            code = sum(
                values[f"B{b}"] << b for b in range(n_bits)
            )
            assert code == level

    @given(st.integers(0, 2**15 - 1))
    @settings(max_examples=40, deadline=None)
    def test_counts_arbitrary_words(self, word):
        encoder = popcount_encoder(15)
        assignment = {f"T{i}": (word >> i) & 1 for i in range(15)}
        values = simulate(encoder, assignment)
        code = sum(values[f"B{b}"] << b for b in range(4))
        assert code == bin(word).count("1")


class TestTransition:
    def test_one_hot_on_valid_codes(self):
        encoder = transition_encoder(6)
        for level in range(7):
            assignment = {f"T{i}": 1 if i < level else 0 for i in range(6)}
            values = simulate(encoder, assignment)
            hots = [values[f"H{i}"] for i in range(6)]
            assert sum(hots) == (1 if level else 0)
            if level:
                assert hots[level - 1] == 1


class TestBehaviouralAdc:
    def test_levels_and_lsb(self):
        adc = BehaviouralAdc(bits=8, v_low=0.0, v_high=5.0)
        assert adc.levels == 256
        assert adc.lsb == pytest.approx(5.0 / 256)

    def test_clipping(self):
        adc = BehaviouralAdc(bits=4, v_low=0.0, v_high=1.0)
        assert adc.convert(-1.0) == 0
        assert adc.convert(2.0) == 15

    @given(st.floats(min_value=0.0, max_value=4.999))
    @settings(max_examples=60, deadline=None)
    def test_monotone(self, v):
        adc = BehaviouralAdc(bits=8)
        assert adc.convert(v) <= adc.convert(min(v + 0.1, 4.999))

    def test_bits_round_trip(self):
        adc = BehaviouralAdc(bits=8)
        code = adc.convert(2.5)
        bits = adc.convert_bits(2.5)
        assert sum(b << i for i, b in enumerate(bits)) == code
        msb = adc.convert_bits(2.5, msb_first=True)
        assert msb == list(reversed(bits))

    def test_midpoint_inverts(self):
        adc = BehaviouralAdc(bits=8)
        for code in (0, 17, 255):
            assert adc.convert(adc.midpoint(code)) == code

    def test_offset_and_gain_faults(self):
        good = BehaviouralAdc(bits=8)
        offset = BehaviouralAdc(bits=8, offset_error_lsb=3.0)
        gain = BehaviouralAdc(bits=8, gain_error=0.05)
        assert offset.convert(2.5) == good.convert(2.5) + 3
        assert gain.convert(2.5) > good.convert(2.5)

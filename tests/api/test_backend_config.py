"""Backend selection through the facade: configs, session, CLI."""

import pytest

from repro.api import (
    CampaignConfig,
    ConfigError,
    SessionConfig,
    Workbench,
)
from repro.api.cli import build_parser


class TestCampaignConfigBackend:
    def test_defaults(self):
        config = CampaignConfig()
        assert config.backend == "auto"
        assert config.factor_cache_size == 64

    def test_backend_validated(self):
        with pytest.raises(ConfigError, match="backend"):
            CampaignConfig(backend="gpu")

    def test_factor_cache_size_validated(self):
        with pytest.raises(ConfigError, match="factor_cache_size"):
            CampaignConfig(factor_cache_size=0)

    def test_session_backend_validated(self):
        with pytest.raises(ConfigError, match="backend"):
            SessionConfig(backend="gpu")


class TestSessionInjection:
    def test_session_backend_flows_into_campaign_stage(self):
        session = Workbench().session(
            config=SessionConfig(
                backend="sparse",
                campaign=CampaignConfig(faults_per_element=1, seed=5),
            )
        )
        result = session.run(
            "fig4", stages=("sensitivity", "stimulus", "campaign")
        )
        assert result.campaign.diagnostics["backend"] == "sparse"
        campaign_timing = [
            t for t in result.timings if t.stage == "campaign"
        ][0]
        assert campaign_timing.backend == "sparse"
        assert "[sparse]" in result.outcome.timing_table()

    def test_explicit_campaign_backend_wins_over_session(self):
        session = Workbench().session(
            config=SessionConfig(backend="sparse")
        )
        result = session.run(
            "fig4",
            stages=("sensitivity", "stimulus", "campaign"),
            campaign=CampaignConfig(
                faults_per_element=1, seed=5, backend="dense"
            ),
        )
        assert result.campaign.diagnostics["backend"] == "dense"

    def test_auto_resolves_to_dense_for_fig4(self):
        # fig4's analog block is far below the sparse threshold: the
        # historical dense path must keep serving it.
        session = Workbench().session(
            campaign=CampaignConfig(faults_per_element=1, seed=5)
        )
        result = session.run(
            "fig4", stages=("sensitivity", "stimulus", "campaign")
        )
        assert result.campaign.diagnostics["backend"] == "dense"


class TestCliBackendFlag:
    def test_campaign_accepts_backend(self):
        args = build_parser().parse_args(
            ["campaign", "fig4", "--backend", "sparse"]
        )
        assert args.backend == "sparse"

    def test_generate_accepts_backend(self):
        args = build_parser().parse_args(
            ["generate", "fig4", "--backend", "dense"]
        )
        assert args.backend == "dense"

    def test_campaign_accepts_factor_cache_size(self):
        args = build_parser().parse_args(
            ["campaign", "fig4", "--factor-cache-size", "8"]
        )
        assert args.factor_cache_size == 8

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["campaign", "fig4", "--backend", "gpu"]
            )


class TestDigitalEngineInjection:
    def test_session_digital_engine_flows_into_stages(self):
        from repro.api import SessionConfig

        session = Workbench().session(
            config=SessionConfig(
                digital_engine="reference",
                campaign=CampaignConfig(faults_per_element=1, seed=5),
            )
        )
        result = session.run(
            "fig4",
            stages=("sensitivity", "stimulus", "atpg", "campaign"),
        )
        assert result.report.digital_run.diagnostics["digital_engine"] == (
            "reference"
        )
        assert result.campaign.diagnostics["digital_engine"] == "reference"
        atpg_timing = [t for t in result.timings if t.stage == "atpg"][0]
        assert atpg_timing.backend == "reference"

    def test_default_runs_compiled_everywhere(self):
        session = Workbench().session(
            campaign=CampaignConfig(faults_per_element=1, seed=5)
        )
        result = session.run(
            "fig4",
            stages=("sensitivity", "stimulus", "atpg", "campaign"),
        )
        assert result.report.digital_run.diagnostics["digital_engine"] == (
            "compiled"
        )
        assert result.campaign.diagnostics["digital_engine"] == "compiled"
        assert "[compiled]" in result.outcome.timing_table()


class TestCliDigitalEngineFlag:
    def test_campaign_accepts_digital_engine(self):
        args = build_parser().parse_args(
            ["campaign", "fig4", "--digital-engine", "reference"]
        )
        assert args.digital_engine == "reference"

    def test_generate_accepts_digital_engine(self):
        args = build_parser().parse_args(
            ["generate", "fig4", "--digital-engine", "compiled"]
        )
        assert args.digital_engine == "compiled"

    def test_unknown_digital_engine_rejected(self):
        import pytest as _pytest

        with _pytest.raises(SystemExit):
            build_parser().parse_args(
                ["campaign", "fig4", "--digital-engine", "quantum"]
            )

"""Shared fixtures: one full fig4 workbench run reused across tests."""

import pytest

from repro.api import CampaignConfig, SessionConfig, TestSession


@pytest.fixture(scope="session")
def fig4_session():
    """A session configured for a small, fast, seeded campaign."""
    return TestSession(
        config=SessionConfig(
            campaign=CampaignConfig(faults_per_element=2, seed=11)
        )
    )


@pytest.fixture(scope="session")
def fig4_result(fig4_session):
    """fig4 through every stage except the slow deviation study."""
    return fig4_session.run(
        "fig4",
        stages=("sensitivity", "stimulus", "conversion", "atpg", "campaign"),
    )

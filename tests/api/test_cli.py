"""The ``python -m repro`` CLI, driven in-process."""

import json

from repro.api.cli import main


class TestList:
    def test_lists_circuits_and_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out
        assert "example3-c432" in out
        assert "table1" in out

    def test_kind_filter(self, capsys):
        assert main(["list", "--kind", "digital"]) == 0
        out = capsys.readouterr().out
        assert "c432" in out
        assert "fig4 " not in out


class TestGenerate:
    def test_writes_a_report_artifact(self, tmp_path, capsys):
        out_path = tmp_path / "fig4.json"
        program_path = tmp_path / "fig4-program.json"
        code = main(
            [
                "generate", "fig4",
                "--stages", "sensitivity,stimulus",
                "--json", str(out_path),
                "--program", str(program_path),
            ]
        )
        assert code == 0
        assert "elements testable" in capsys.readouterr().out
        document = json.loads(out_path.read_text())
        assert document["artifact_version"] == 1
        assert document["kind"] == "report"
        assert document["circuit"] == "fig4-mixed"
        assert document["meta"]["stages"] == ["sensitivity", "stimulus"]
        program = json.loads(program_path.read_text())
        assert program["kind"] == "program"
        assert program["payload"]["format_version"] == 1

    def test_unknown_circuit_is_a_clean_error(self, capsys):
        assert main(["generate", "fig5"]) == 2
        assert "did you mean" in capsys.readouterr().err


class TestExperiment:
    def test_runs_and_persists(self, tmp_path, capsys):
        out_path = tmp_path / "figure6.json"
        assert main(["experiment", "figure6", "--json", str(out_path)]) == 0
        assert "figure6" in capsys.readouterr().out
        document = json.loads(out_path.read_text())
        assert document["kind"] == "experiment"
        assert document["payload"]["name"] == "figure6"

    def test_unknown_experiment_is_a_clean_error(self, capsys):
        assert main(["experiment", "table99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestBenchSmoke:
    def test_passes(self, capsys):
        assert main(["bench-smoke"]) == 0
        assert "all checks passed" in capsys.readouterr().out

"""The ``python -m repro`` CLI, driven in-process."""

import json

from repro.api.cli import main


class TestList:
    def test_lists_circuits_and_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out
        assert "example3-c432" in out
        assert "table1" in out

    def test_kind_filter(self, capsys):
        assert main(["list", "--kind", "digital"]) == 0
        out = capsys.readouterr().out
        assert "c432" in out
        assert "fig4 " not in out


class TestGenerate:
    def test_writes_a_report_artifact(self, tmp_path, capsys):
        out_path = tmp_path / "fig4.json"
        program_path = tmp_path / "fig4-program.json"
        code = main(
            [
                "generate", "fig4",
                "--stages", "sensitivity,stimulus",
                "--json", str(out_path),
                "--program", str(program_path),
            ]
        )
        assert code == 0
        assert "elements testable" in capsys.readouterr().out
        document = json.loads(out_path.read_text())
        assert document["artifact_version"] == 1
        assert document["kind"] == "report"
        assert document["circuit"] == "fig4-mixed"
        assert document["meta"]["stages"] == ["sensitivity", "stimulus"]
        program = json.loads(program_path.read_text())
        assert program["kind"] == "program"
        assert program["payload"]["format_version"] == 1

    def test_unknown_circuit_is_a_clean_error(self, capsys):
        assert main(["generate", "fig5"]) == 2
        assert "did you mean" in capsys.readouterr().err


class TestExperiment:
    def test_runs_and_persists(self, tmp_path, capsys):
        out_path = tmp_path / "figure6.json"
        assert main(["experiment", "figure6", "--json", str(out_path)]) == 0
        assert "figure6" in capsys.readouterr().out
        document = json.loads(out_path.read_text())
        assert document["kind"] == "experiment"
        assert document["payload"]["name"] == "figure6"

    def test_unknown_experiment_is_a_clean_error(self, capsys):
        assert main(["experiment", "table99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestBenchSmoke:
    def test_passes(self, capsys):
        assert main(["bench-smoke"]) == 0
        assert "all checks passed" in capsys.readouterr().out


class TestCampaignCacheDirFlag:
    def test_parser_accepts_cache_dir(self):
        from repro.api.cli import build_parser

        args = build_parser().parse_args(
            ["campaign", "fig4", "--cache-dir", "/tmp/cc"]
        )
        assert args.cache_dir == "/tmp/cc"
        # Default stays None so the config dataclass owns the default.
        bare = build_parser().parse_args(["campaign", "fig4"])
        assert bare.cache_dir is None


class TestCacheVerb:
    def _populated(self, tmp_path):
        """A cache holding one real sharded campaign's entries."""
        from repro.api import CampaignConfig, Workbench
        from repro.core import run_campaign

        cache_dir = tmp_path / "cache"
        session = Workbench().session()
        mixed = session.circuit("fig4")
        report = session.run(mixed, stages=("sensitivity", "stimulus")).report
        run_campaign(
            mixed,
            report,
            config=CampaignConfig(
                faults_per_element=1,
                seed=3,
                shards=2,
                cache_dir=str(cache_dir),
            ),
        )
        return cache_dir

    def test_stats_verify_and_gc(self, tmp_path, capsys):
        cache_dir = self._populated(tmp_path)

        assert main(["cache", "stats", str(cache_dir)]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["namespaces"]["campaign-shard"]["entries"] == 2

        assert main(["cache", "verify", str(cache_dir)]) == 0
        assert "entries ok" in capsys.readouterr().out

        assert main(["cache", "gc", str(cache_dir), "--keep-gb", "1"]) == 0
        assert "0 entries evicted" in capsys.readouterr().out

    def test_verify_flags_corruption_with_exit_1(self, tmp_path, capsys):
        from repro.core.cache import ResultCache
        from repro.core.fingerprint import fingerprint_of

        cache_dir = tmp_path / "cache"
        cache = ResultCache(cache_dir)
        path = cache.put_bytes("unit-test", fingerprint_of({"n": 1}), b"x")
        path.write_bytes(b"torn")
        assert main(["cache", "verify", str(cache_dir)]) == 1
        captured = capsys.readouterr()
        assert "corrupt unit-test/" in captured.err
        assert "0/1 entries ok" in captured.out

    def test_gc_without_keep_gb_is_a_usage_error(self, tmp_path, capsys):
        assert main(["cache", "gc", str(tmp_path)]) == 2
        assert "--keep-gb" in capsys.readouterr().err


class TestAuditVerb:
    def _report_artifact(self, tmp_path):
        from repro.api import CampaignConfig, Workbench

        session = Workbench().session(
            campaign=CampaignConfig(faults_per_element=1, seed=3)
        )
        result = session.run(
            "fig4",
            stages=("sensitivity", "stimulus", "conversion", "atpg",
                    "campaign"),
        )
        path = tmp_path / "report.json"
        result.to_artifact().save(path)
        return path

    def test_audit_agrees_and_writes_the_bundle(self, tmp_path, capsys):
        path = self._report_artifact(tmp_path)
        bundle = tmp_path / "bundle"
        summary = tmp_path / "audit.json"
        code = main(
            ["audit", str(path), "--out", str(bundle),
             "--json", str(summary)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "all engine pairs agree" in out
        assert "[ok ] recorded-vs-replayed" in out
        manifest = json.loads((bundle / "manifest.json").read_text())
        assert "audit.json" in manifest
        assert any(name.startswith("replay-") for name in manifest)
        document = json.loads(summary.read_text())
        assert document["ok"] is True
        assert len(document["comparisons"]) == 4

    def test_unresolvable_target_is_a_clean_error(self, tmp_path, capsys):
        assert main(["audit", str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err

"""Workbench/session behaviour: pipelines, pooling, batch fan-out."""

import pytest

from repro.api import (
    ConfigError,
    GeneratorConfig,
    Pipeline,
    TestSession,
    Workbench,
)


class TestPipelineValidation:
    def test_unknown_stage_rejected(self):
        with pytest.raises(ConfigError, match="unknown pipeline stage"):
            Pipeline(["sensitivity", "teleport"])

    def test_out_of_order_stages_rejected(self):
        with pytest.raises(ConfigError, match="canonical order"):
            Pipeline(["stimulus", "sensitivity"])

    def test_duplicate_stages_rejected(self):
        with pytest.raises(ConfigError, match="duplicate"):
            Pipeline(["stimulus", "stimulus"])

    def test_campaign_requires_stimulus(self):
        with pytest.raises(ConfigError, match="requires"):
            Pipeline(["sensitivity", "campaign"])


class TestSessionRun:
    def test_full_fig4_flow(self, fig4_result):
        report = fig4_result.report
        assert fig4_result.name == "fig4"
        assert report.analog_coverage == 1.0
        assert report.digital_run is not None
        assert report.digital_run.n_vectors > 0
        assert fig4_result.campaign is not None
        assert fig4_result.campaign.guaranteed_detection_rate == 1.0

    def test_stage_timings_cover_requested_stages(self, fig4_result):
        stages = [t.stage for t in fig4_result.timings]
        assert stages == [
            "sensitivity", "stimulus", "conversion", "atpg", "campaign",
        ]
        assert fig4_result.total_seconds > 0
        assert "pipeline timing" in fig4_result.summary()

    def test_alias_and_instance_inputs(self, fig4_session):
        by_alias = fig4_session.run("fig4-mixed", stages=("sensitivity",))
        assert by_alias.name == "fig4"
        mixed = fig4_session.circuit("fig4")
        by_instance = fig4_session.run(mixed, stages=("sensitivity",))
        assert by_instance.name == "fig4-mixed"  # instance keeps its own name

    def test_non_mixed_circuits_are_rejected(self, fig4_session):
        with pytest.raises(ConfigError, match="kind"):
            fig4_session.run("c432", stages=("sensitivity",))

    def test_include_digital_false_vetoes_the_atpg_stage(self, fig4_session):
        result = fig4_session.run(
            "fig4",
            stages=("sensitivity", "stimulus", "atpg"),
            generator=GeneratorConfig(include_digital=False),
        )
        assert result.report.digital_run is None
        assert "atpg" not in [t.stage for t in result.timings]

    def test_per_call_config_overrides_session(self, fig4_session):
        result = fig4_session.run(
            "fig4",
            stages=("sensitivity", "stimulus"),
            generator=GeneratorConfig(comparator_budget=1),
        )
        assert result.configs["generator"]["comparator_budget"] == 1

    def test_program_artifact(self, fig4_result):
        program = fig4_result.program()
        assert program.n_steps > 0
        artifact = fig4_result.program_artifact()
        assert artifact.kind == "program"


class TestBddPool:
    def test_repeat_runs_hit_the_pool(self):
        session = TestSession()
        session.run("fig4", stages=("conversion",))
        session.run("fig4", stages=("conversion",))
        stats = session.stats()
        assert stats["runs"] == 2
        assert stats["bdd_pool_hits"] == 1
        assert stats["bdd_pool_misses"] == 1
        assert stats["bdd_pool_size"] == 1


class TestRunBatch:
    def test_two_circuit_smoke(self):
        """The 2-circuit fan-out: results in order, both complete."""
        session = TestSession()
        results = session.run_batch(
            ["fig4", "example3-c432"],
            stages=("sensitivity", "conversion"),
        )
        assert [r.name for r in results] == ["fig4", "example3-c432"]
        for result in results:
            assert len(result.report.comparator_observability) > 0
            assert result.report.conversion_coverage is not None
        assert session.stats()["runs"] == 2

    def test_empty_batch(self):
        assert TestSession().run_batch([]) == []

    def test_invalid_stages_fail_before_spawning(self):
        with pytest.raises(ConfigError):
            TestSession().run_batch(["fig4"], stages=("warp",))

    def test_duplicate_instances_rejected(self):
        session = TestSession()
        mixed = session.circuit("fig4")
        with pytest.raises(ConfigError, match="same MixedSignalCircuit"):
            session.run_batch([mixed, mixed], stages=("sensitivity",))

    @pytest.mark.parametrize("bad", [0, -1, -8])
    def test_explicit_non_positive_workers_rejected(self, bad):
        # Regression: `max_workers or ...` used to treat an explicit 0
        # as "unset" and silently fall through to the defaults.
        with pytest.raises(ConfigError, match="max_workers"):
            TestSession().run_batch(
                ["fig4"], stages=("sensitivity",), max_workers=bad
            )


class TestWorkbenchFacade:
    def test_session_keyword_shorthand(self):
        session = Workbench().session(
            generator=GeneratorConfig(tolerance=0.1)
        )
        assert session.config.generator.tolerance == 0.1

    def test_session_rejects_config_plus_keywords(self):
        from repro.api import SessionConfig

        with pytest.raises(ConfigError):
            Workbench().session(
                SessionConfig(), generator=GeneratorConfig()
            )

    def test_list_circuits_and_experiments(self):
        wb = Workbench()
        names = [spec.name for spec in wb.list_circuits("mixed")]
        assert "fig4" in names
        assert "table1" in wb.list_experiments()

    def test_run_experiment(self):
        run = Workbench().run_experiment("figure6")
        assert run.name == "figure6"
        assert run.rendered
        assert run.seconds >= 0
        assert run.to_artifact().kind == "experiment"

    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            Workbench().run_experiment("table99")

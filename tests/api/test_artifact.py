"""Artifact JSON: round-trips, program_io compatibility, legacy loads."""

import math

import pytest

from repro.api import Artifact
from repro.core import program_from_report, program_io


class TestReportArtifact:
    def test_json_round_trip_is_stable(self, fig4_result):
        artifact = fig4_result.to_artifact()
        text = artifact.to_json()
        again = Artifact.from_json(text)
        assert again.to_json() == text
        assert again.kind == "report"
        assert again.circuit == "fig4-mixed"

    def test_decoded_report_answers_like_the_live_one(self, fig4_result):
        live = fig4_result.report
        decoded = Artifact.from_json(
            fig4_result.to_artifact().to_json()
        ).report()
        assert decoded.circuit_name == live.circuit_name
        assert decoded.n_analog_testable == live.n_analog_testable
        assert decoded.analog_coverage == live.analog_coverage
        assert decoded.comparator_observability == (
            live.comparator_observability
        )
        assert decoded.digital_run.n_untestable == live.digital_run.n_untestable
        assert decoded.digital_run.n_vectors == live.digital_run.n_vectors
        assert decoded.summary() == live.summary()

    def test_untestable_inf_survives_strict_json(self, fig4_result):
        artifact = fig4_result.to_artifact()
        assert "Infinity" not in artifact.to_json()
        coverage = Artifact.from_json(artifact.to_json()).report()
        # fig4's conversion ladder has a merged middle tap with finite ED
        # and every tap observable; infs appear in per-test ed defaults.
        assert all(
            math.isinf(ed) or ed > 0
            for ed in coverage.conversion_coverage.ed_percent
        )

    def test_campaign_round_trip(self, fig4_result):
        decoded = Artifact.from_json(
            fig4_result.to_artifact().to_json()
        ).campaign()
        live = fig4_result.campaign
        assert decoded.n_injected == live.n_injected
        assert decoded.detection_rate() == live.detection_rate()
        assert decoded.summary() == live.summary()

    def test_wrong_kind_accessors_raise(self, fig4_result):
        artifact = fig4_result.to_artifact()
        with pytest.raises(ValueError):
            artifact.program()
        with pytest.raises(ValueError):
            artifact.atpg()


class TestProgramArtifact:
    def test_round_trip_matches_program_io(self, fig4_result):
        program = program_from_report(fig4_result.report)
        artifact = Artifact.from_program(program)
        decoded = Artifact.from_json(artifact.to_json()).program()
        assert program_io.dumps(decoded) == program_io.dumps(program)

    def test_legacy_program_io_document_loads(self, fig4_result):
        """Archives written by program_io.dumps stay loadable."""
        program = program_from_report(fig4_result.report)
        legacy_text = program_io.dumps(program)
        artifact = Artifact.from_json(legacy_text)
        assert artifact.kind == "program"
        assert artifact.meta["legacy_program_io"] is True
        assert program_io.dumps(artifact.program()) == legacy_text

    def test_payload_is_the_program_io_document(self, fig4_result):
        program = program_from_report(fig4_result.report)
        artifact = Artifact.from_program(program)
        assert artifact.payload == program_io.to_document(program)


class TestAtpgArtifact:
    def test_round_trip(self, fig4_result):
        run = fig4_result.report.digital_run
        decoded = Artifact.from_json(
            Artifact.from_atpg(run).to_json()
        ).atpg()
        assert decoded.circuit_name == run.circuit_name
        assert decoded.n_untestable == run.n_untestable
        assert decoded.n_vectors == run.n_vectors
        assert decoded.vectors == run.vectors
        assert decoded.fault_coverage == pytest.approx(run.fault_coverage)


class TestJobArtifact:
    def test_round_trip(self):
        from repro.service.jobs import Job, JobSpec

        job = Job(
            id="j000001-deadbeef",
            spec=JobSpec(circuit="fig4-mixed"),
            fingerprint="deadbeef" * 8,
            state="queued",
            created=1.5,
            events=[{"seq": 0, "ts": 1.5, "kind": "submitted"}],
        )
        artifact = Artifact.from_job(job.to_document(), circuit="fig4-mixed")
        assert artifact.kind == "job"
        again = Artifact.from_json(artifact.to_json())
        decoded = Job.from_document(again.payload)
        assert decoded == job


class TestEnvelope:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            Artifact(kind="mystery", circuit=None, payload={})

    def test_unsupported_version_rejected(self):
        with pytest.raises(ValueError, match="version"):
            Artifact.from_document(
                {"artifact_version": 99, "kind": "report", "payload": {}}
            )

    def test_save_and_load(self, tmp_path, fig4_result):
        path = fig4_result.to_artifact().save(tmp_path / "fig4.json")
        assert Artifact.load(path).to_json() == (
            fig4_result.to_artifact().to_json()
        )

"""Typed config validation: constructors reject out-of-range values."""

import pytest

from repro.api import (
    AtpgConfig,
    CampaignConfig,
    ConfigError,
    GeneratorConfig,
    SessionConfig,
)


class TestGeneratorConfig:
    def test_defaults_match_the_paper(self):
        config = GeneratorConfig()
        assert config.tolerance == 0.05
        assert config.element_tolerance == 0.05
        assert config.comparator_budget is None
        assert config.include_digital

    @pytest.mark.parametrize("tolerance", [0.0, 1.0, -0.1, 2.0])
    def test_tolerance_out_of_range(self, tolerance):
        with pytest.raises(ConfigError):
            GeneratorConfig(tolerance=tolerance)

    def test_element_tolerance_out_of_range(self):
        with pytest.raises(ConfigError):
            GeneratorConfig(element_tolerance=1.5)

    def test_comparator_budget_must_be_positive(self):
        with pytest.raises(ConfigError):
            GeneratorConfig(comparator_budget=0)

    def test_replace_returns_validated_copy(self):
        config = GeneratorConfig().replace(tolerance=0.1)
        assert config.tolerance == 0.1
        assert GeneratorConfig().tolerance == 0.05  # original untouched
        with pytest.raises(ConfigError):
            config.replace(tolerance=7.0)

    def test_replace_rejects_unknown_fields(self):
        with pytest.raises(ConfigError, match="no field"):
            GeneratorConfig().replace(tollerance=0.1)

    def test_frozen(self):
        with pytest.raises(Exception):
            GeneratorConfig().tolerance = 0.2

    def test_as_dict(self):
        assert GeneratorConfig().as_dict()["tolerance"] == 0.05


class TestCampaignConfig:
    def test_faults_per_element_must_be_positive(self):
        with pytest.raises(ConfigError):
            CampaignConfig(faults_per_element=0)

    @pytest.mark.parametrize(
        "rng", [(3.0, 0.5), (0.0, 2.0), (-1.0, 1.0), (1.0, 2.0, 3.0)]
    )
    def test_severity_range_validated(self, rng):
        with pytest.raises(ConfigError):
            CampaignConfig(severity_range=rng)


class TestAtpgConfig:
    def test_ordering_validated(self):
        with pytest.raises(ConfigError, match="ordering"):
            AtpgConfig(ordering="alphabetical")
        assert AtpgConfig(ordering="declaration").ordering == "declaration"


class TestSessionConfig:
    def test_bundles_defaults(self):
        config = SessionConfig()
        assert config.generator == GeneratorConfig()
        assert config.campaign == CampaignConfig()
        assert config.atpg == AtpgConfig()

    def test_max_workers_validated(self):
        with pytest.raises(ConfigError):
            SessionConfig(max_workers=0)


class TestDigitalEngineKnobs:
    def test_atpg_engine_validated(self):
        with pytest.raises(ConfigError, match="engine"):
            AtpgConfig(engine="quantum")
        assert AtpgConfig().engine == "compiled"
        assert AtpgConfig(engine="reference").engine == "reference"

    def test_campaign_digital_engine_validated(self):
        with pytest.raises(ConfigError, match="digital_engine"):
            CampaignConfig(digital_engine="quantum")
        assert CampaignConfig().digital_engine == "compiled"

    def test_session_digital_engine_validated(self):
        with pytest.raises(ConfigError, match="digital_engine"):
            SessionConfig(digital_engine="quantum")

    def test_names_mirror_simulate_module(self):
        from repro.api.config import DIGITAL_ENGINES
        from repro.digital.simulate import DIGITAL_ENGINES as SIM

        assert tuple(DIGITAL_ENGINES) == tuple(SIM)

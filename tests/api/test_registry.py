"""Registry lookup: names, aliases, kinds, errors, custom registration."""

import pytest

from repro.api import CircuitRegistry, default_registry
from repro.core import MixedSignalCircuit


class TestDefaultRegistry:
    def test_registers_the_papers_circuits(self):
        registry = default_registry()
        for name in (
            "fig4", "example3-c432", "example3-c1908",
            "bandpass", "chebyshev", "state-variable",
            "fig3", "c432", "c499", "c880", "c1355", "c1908",
        ):
            assert name in registry

    def test_alias_resolves_to_canonical_name(self):
        registry = default_registry()
        assert registry.resolve("fig4-mixed") == "fig4"
        assert registry.get("fig2-bandpass").name == "bandpass"

    def test_kind_filter(self):
        registry = default_registry()
        mixed = registry.names("mixed")
        assert "fig4" in mixed and "c432" not in mixed
        digital = registry.names("digital")
        assert "c432" in digital and "fig4" not in digital

    def test_build_constructs_fresh_instances(self):
        registry = default_registry()
        first = registry.build("fig4")
        second = registry.build("fig4")
        assert isinstance(first, MixedSignalCircuit)
        assert first is not second

    def test_unknown_name_suggests_alternatives(self):
        with pytest.raises(KeyError, match="did you mean"):
            default_registry().get("fig5")

    def test_same_instance_returned(self):
        assert default_registry() is default_registry()


class TestCustomRegistration:
    def test_register_and_build(self):
        registry = CircuitRegistry()
        registry.register(
            "probe", lambda: "circuit", kind="digital", aliases=("p",)
        )
        assert registry.build("probe") == "circuit"
        assert registry.build("p") == "circuit"
        assert len(registry) == 1

    def test_decorator_form(self):
        registry = CircuitRegistry()

        @registry.register("probe", kind="digital")
        def build_probe():
            return 42

        assert registry.build("probe") == 42
        assert build_probe() == 42

    def test_duplicate_name_rejected(self):
        registry = CircuitRegistry()
        registry.register("probe", lambda: 1, kind="digital")
        with pytest.raises(ValueError, match="already registered"):
            registry.register("probe", lambda: 2, kind="digital")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            CircuitRegistry().register("probe", lambda: 1, kind="quantum")

"""The content-addressed artifact store: dedup, atomicity, torn files."""

import json

import pytest

from repro.api import Artifact, ConfigError
from repro.service import ArtifactStore, fingerprint_of


def _artifact(tag: str) -> Artifact:
    return Artifact(kind="experiment", circuit=None, payload={"name": tag, "rendered": tag, "seconds": 0.0})


def _fp(tag: str) -> str:
    return fingerprint_of({"tag": tag})


class TestFingerprint:
    def test_is_sha256_hex_and_deterministic(self):
        assert _fp("a") == _fp("a")
        assert _fp("a") != _fp("b")
        assert len(_fp("a")) == 64
        int(_fp("a"), 16)  # pure hex

    def test_key_order_does_not_matter(self):
        assert fingerprint_of({"a": 1, "b": 2}) == fingerprint_of({"b": 2, "a": 1})


class TestStore:
    def test_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        fp = _fp("one")
        assert not store.has(fp)
        assert store.get(fp) is None
        store.put(fp, _artifact("one"))
        assert store.has(fp)
        assert fp in store
        assert store.get(fp).payload["name"] == "one"
        assert store.fingerprints() == [fp]
        assert len(store) == 1

    def test_first_write_wins(self, tmp_path):
        """A fingerprint names the work: re-putting never clobbers."""
        store = ArtifactStore(tmp_path)
        fp = _fp("x")
        store.put(fp, _artifact("original"))
        store.put(fp, _artifact("imposter"))
        assert store.get(fp).payload["name"] == "original"

    def test_torn_entry_reads_as_miss_and_is_replaceable(self, tmp_path):
        store = ArtifactStore(tmp_path)
        fp = _fp("torn")
        path = store.path_for(fp)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text('{"artifact_version": 1, "kind": "exper')  # torn write
        assert store.get(fp) is None
        assert not store.has(fp)
        store.put(fp, _artifact("healed"))  # torn entries may be replaced
        assert store.get(fp).payload["name"] == "healed"

    def test_foreign_json_reads_as_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        fp = _fp("foreign")
        path = store.path_for(fp)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps({"not": "an artifact"}))
        assert store.get(fp) is None

    def test_bad_fingerprints_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        for bad in ("", "deadbeef", "../../etc/passwd", "Z" * 64, 42, None):
            with pytest.raises(ConfigError):
                store.path_for(bad)

    def test_gc_keeps_only_the_named_set(self, tmp_path):
        store = ArtifactStore(tmp_path)
        fps = [_fp(tag) for tag in ("a", "b", "c")]
        for fp, tag in zip(fps, ("a", "b", "c")):
            store.put(fp, _artifact(tag))
        stray = store.path_for(fps[0]).with_suffix(".tmp")
        stray.write_text("killed writer leftovers")
        removed = store.gc(keep=[fps[1]])
        assert removed == sorted([fps[0], fps[2]])
        assert store.fingerprints() == [fps[1]]
        assert not stray.exists()

    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put(_fp("clean"), _artifact("clean"))
        assert not list(tmp_path.rglob("*.tmp"))

"""The content-addressed artifact store: dedup, atomicity, torn files."""

import json
import os
import time

import pytest

from repro.api import Artifact, ConfigError
from repro.service import ArtifactStore, fingerprint_of


def _artifact(tag: str) -> Artifact:
    return Artifact(kind="experiment", circuit=None, payload={"name": tag, "rendered": tag, "seconds": 0.0})


def _fp(tag: str) -> str:
    return fingerprint_of({"tag": tag})


def _backdate(store: ArtifactStore, seconds: float = 60.0) -> None:
    """Age every object file so gc sees it as predating the sweep."""
    past = time.time() - seconds
    for path in store.root.rglob("*"):
        if path.is_file():
            os.utime(path, (past, past))


class TestFingerprint:
    def test_is_sha256_hex_and_deterministic(self):
        assert _fp("a") == _fp("a")
        assert _fp("a") != _fp("b")
        assert len(_fp("a")) == 64
        int(_fp("a"), 16)  # pure hex

    def test_key_order_does_not_matter(self):
        assert fingerprint_of({"a": 1, "b": 2}) == fingerprint_of({"b": 2, "a": 1})


class TestStore:
    def test_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        fp = _fp("one")
        assert not store.has(fp)
        assert store.get(fp) is None
        store.put(fp, _artifact("one"))
        assert store.has(fp)
        assert fp in store
        assert store.get(fp).payload["name"] == "one"
        assert store.fingerprints() == [fp]
        assert len(store) == 1

    def test_first_write_wins(self, tmp_path):
        """A fingerprint names the work: re-putting never clobbers."""
        store = ArtifactStore(tmp_path)
        fp = _fp("x")
        store.put(fp, _artifact("original"))
        store.put(fp, _artifact("imposter"))
        assert store.get(fp).payload["name"] == "original"

    def test_torn_entry_reads_as_miss_and_is_replaceable(self, tmp_path):
        store = ArtifactStore(tmp_path)
        fp = _fp("torn")
        path = store.path_for(fp)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text('{"artifact_version": 1, "kind": "exper')  # torn write
        assert store.get(fp) is None
        assert not store.has(fp)
        store.put(fp, _artifact("healed"))  # torn entries may be replaced
        assert store.get(fp).payload["name"] == "healed"

    def test_foreign_json_reads_as_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        fp = _fp("foreign")
        path = store.path_for(fp)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps({"not": "an artifact"}))
        assert store.get(fp) is None

    def test_bad_fingerprints_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        for bad in ("", "deadbeef", "../../etc/passwd", "Z" * 64, 42, None):
            with pytest.raises(ConfigError):
                store.path_for(bad)

    def test_gc_keeps_only_the_named_set(self, tmp_path):
        store = ArtifactStore(tmp_path)
        fps = [_fp(tag) for tag in ("a", "b", "c")]
        for fp, tag in zip(fps, ("a", "b", "c")):
            store.put(fp, _artifact(tag))
        stray = store.path_for(fps[0]).with_suffix(".tmp")
        stray.write_text("killed writer leftovers")
        _backdate(store)  # everything predates the sweep
        removed = store.gc(keep=[fps[1]])
        assert removed == sorted([fps[0], fps[2]])
        assert store.fingerprints() == [fps[1]]
        assert not stray.exists()

    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put(_fp("clean"), _artifact("clean"))
        assert not list(tmp_path.rglob("*.tmp"))


class TestGcPutRace:
    """gc must never delete what a concurrent put just wrote."""

    def test_entry_written_during_sweep_is_spared(self, tmp_path, monkeypatch):
        """A put landing after the sweep started survives the sweep.

        Simulated by pinning the sweep's start time into the past: every
        entry then looks newer than the sweep, exactly as a racing put's
        would.
        """
        import repro.service.store as store_module

        store = ArtifactStore(tmp_path)
        fp = _fp("fresh")
        store.put(fp, _artifact("fresh"))
        monkeypatch.setattr(store_module, "_now", lambda: time.time() - 60.0)
        removed = store.gc(keep=[])
        assert removed == []
        assert store.has(fp)

    def test_put_freshens_mtime_of_existing_entry(self, tmp_path):
        """Re-putting marks the entry live so a racing gc skips it."""
        store = ArtifactStore(tmp_path)
        fp = _fp("touched")
        store.put(fp, _artifact("touched"))
        _backdate(store)
        aged = store.path_for(fp).stat().st_mtime
        store.put(fp, _artifact("touched"))
        assert store.path_for(fp).stat().st_mtime > aged

    def test_fresh_tmp_is_left_for_its_writer(self, tmp_path):
        """A young *.tmp is an in-flight atomic write, not a stray."""
        store = ArtifactStore(tmp_path)
        fp = _fp("inflight")
        store.put(fp, _artifact("inflight"))
        _backdate(store)
        tmp = store.path_for(fp).with_suffix(".tmp")
        tmp.write_text("mid-write")  # fresh: inside TMP_GRACE
        store.gc(keep=[fp])
        assert tmp.exists()

    def test_entry_vanishing_mid_sweep_is_tolerated(self, tmp_path, monkeypatch):
        """Another sweeper unlinking first is a skip, not an error."""
        store = ArtifactStore(tmp_path)
        ghost = _fp("ghost")
        monkeypatch.setattr(store, "fingerprints", lambda: [ghost])
        assert store.gc(keep=[]) == []

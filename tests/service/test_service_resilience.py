"""Service-layer resilience: job retries, poison jobs, client retries.

Chaos plans drive every failure deterministically: the scheduler's
``job`` site fails executions, the campaign config's ``chaos`` field
quarantines shards, and the HTTP server's ``http`` site turns routes
into 500s — exercising the retry/evidence paths end to end without a
single real crash.
"""

import socket
import threading
import time

import pytest

from repro.api import Artifact, CampaignConfig, ConfigError
from repro.core.atomic_io import read_artifact
from repro.core.resilience import RetryPolicy
from repro.devtools.chaos import ChaosEvent, ChaosPlan
from repro.service import JobQueue, JobSpec, Scheduler, ServiceClient, ServiceError
from repro.service.http import ServiceServer, make_server


def _spec(**campaign) -> JobSpec:
    return JobSpec(
        circuit="fig4",
        campaign=CampaignConfig(faults_per_element=2, seed=3).replace(
            **campaign
        ),
    )


def _wait_terminal(queue: JobQueue, job_id: str, timeout: float = 120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        job = queue.get(job_id)
        if job.state in ("done", "failed", "cancelled"):
            return job
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} never went terminal")


def _kinds(job) -> list[str]:
    return [event["kind"] for event in job.events]


class TestJobRetry:
    def test_failed_attempt_retries_to_done(self, tmp_path):
        """Attempt 1 fails (chaos), attempt 2 succeeds: done, attempts=2,
        with durable evidence of the failed attempt."""
        queue = JobQueue(tmp_path)
        chaos = ChaosPlan(
            events=(ChaosEvent(site="job", key="fig4", attempts=(1,)),)
        )
        scheduler = Scheduler(
            queue,
            workers=1,
            retry=RetryPolicy(max_attempts=2, base_delay=0.0),
            chaos=chaos,
        ).start()
        try:
            job, _ = scheduler.submit(_spec())
            finished = _wait_terminal(queue, job.id)
        finally:
            scheduler.stop()
        assert finished.state == "done"
        assert finished.attempts == 2
        # The attempt-1 error must not outlive the successful retry.
        assert finished.error is None
        kinds = _kinds(finished)
        assert "attempt-failed" in kinds
        assert "retry-scheduled" in kinds
        assert kinds.index("retry-scheduled") < kinds.index("done")
        # The retrying state was walked through and persisted.
        assert "retrying" in kinds
        # Durable evidence of attempt 1 under <root>/failures/.
        evidence = read_artifact(
            tmp_path / "failures" / f"{job.id}-attempt-01.json",
            kind="failure",
        )
        assert evidence is not None
        record = evidence.failure()
        assert record.phase == "job"
        assert record.key == job.id
        assert "ChaosError" in record.error

    def test_exhausted_budget_fails_with_attempts(self, tmp_path):
        queue = JobQueue(tmp_path)
        chaos = ChaosPlan(
            events=(ChaosEvent(site="job", key="fig4", attempts=(1, 2)),)
        )
        scheduler = Scheduler(
            queue,
            workers=1,
            retry=RetryPolicy(max_attempts=2, base_delay=0.0),
            chaos=chaos,
        ).start()
        try:
            job, _ = scheduler.submit(_spec())
            finished = _wait_terminal(queue, job.id)
        finally:
            scheduler.stop()
        assert finished.state == "failed"
        assert finished.attempts == 2
        assert "ChaosError" in finished.error
        assert _kinds(finished).count("attempt-failed") == 2
        # One evidence artifact per attempt.
        for attempt in (1, 2):
            path = tmp_path / "failures" / f"{job.id}-attempt-{attempt:02d}.json"
            assert read_artifact(path, kind="failure") is not None

    def test_partial_campaign_is_never_stored(self, tmp_path):
        """Quarantined shards must not poison the dedup store."""
        queue = JobQueue(tmp_path)
        shard_chaos = ChaosPlan(
            events=(ChaosEvent(site="shard", key="0", attempts=(1, 2)),)
        ).to_json()
        spec = _spec(
            shards=2,
            shard_workers=1,
            retry_backoff=0.0,
            chaos=shard_chaos,
        )
        scheduler = Scheduler(
            queue, workers=1, retry=RetryPolicy(max_attempts=1)
        ).start()
        try:
            job, _ = scheduler.submit(spec)
            finished = _wait_terminal(queue, job.id)
        finally:
            scheduler.stop()
        assert finished.state == "failed"
        assert "partial" in _kinds(finished)
        assert "quarantined" in finished.error
        # The store never saw the partial result.
        assert not queue.store.has(job.fingerprint)


class TestPoisonJobRecovery:
    def test_recovery_is_capped(self, tmp_path):
        """A job found mid-flight restart after restart ends failed."""
        policy = RetryPolicy(max_attempts=2)
        queue = JobQueue(tmp_path, recovery_policy=policy)
        job, _ = queue.submit(_spec())
        queue.transition(job.id, "running")

        # Restart 1: recovered back to queued.
        second = JobQueue(tmp_path, recovery_policy=policy)
        recovered = second.get(job.id)
        assert recovered.state == "queued"
        assert recovered.recoveries == 1
        assert "recovered" in _kinds(recovered)
        second.transition(job.id, "running")

        # Restart 2: over the cap — poisoned, durable evidence.
        third = JobQueue(tmp_path, recovery_policy=policy)
        poisoned = third.get(job.id)
        assert poisoned.state == "failed"
        assert poisoned.recoveries == 2
        assert "poison job" in poisoned.error
        assert "poisoned" in _kinds(poisoned)
        evidence = read_artifact(
            tmp_path / "failures" / f"{job.id}-recovery.json", kind="failure"
        )
        assert evidence is not None
        assert evidence.failure().phase == "recovery"

        # Restart 3: failed is terminal; nothing moves.
        fourth = JobQueue(tmp_path, recovery_policy=policy)
        assert fourth.get(job.id).state == "failed"
        assert fourth.get(job.id).recoveries == 2

    def test_clean_jobs_recover_normally(self, tmp_path):
        """Below the cap, mid-flight jobs simply re-queue (the PR-7
        behaviour, now with a recoveries counter)."""
        queue = JobQueue(tmp_path)
        job, _ = queue.submit(_spec())
        queue.transition(job.id, "running")
        reloaded = JobQueue(tmp_path).get(job.id)
        assert reloaded.state == "queued"
        assert reloaded.recoveries == 1


class TestClientRetry:
    def _client_with_script(self, outcomes):
        """A client whose transport is scripted: each entry is either an
        exception to raise or a body to return."""
        client = ServiceClient(
            "http://127.0.0.1:1", retries=2, retry_backoff=0.0
        )
        calls = []

        def fake_request_once(method, path, body=None):
            calls.append(path)
            outcome = outcomes.pop(0)
            if isinstance(outcome, Exception):
                raise outcome
            return outcome

        client._request_once = fake_request_once
        return client, calls

    def test_transient_errors_retry_then_succeed(self):
        client, calls = self._client_with_script(
            [
                ServiceError("boom", 503, transient=True),
                ServiceError("still down", transient=True),
                '{"ok": true}',
            ]
        )
        assert client._json("GET", "/healthz") == {"ok": True}
        assert len(calls) == 3

    def test_non_transient_errors_never_retry(self):
        client, calls = self._client_with_script(
            [ServiceError("bad request", 400, transient=False)]
        )
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/healthz")
        assert excinfo.value.status == 400
        assert len(calls) == 1

    def test_exhausted_transient_budget_raises_the_last_error(self):
        client, calls = self._client_with_script(
            [ServiceError(f"down {i}", 500, transient=True) for i in range(3)]
        )
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/healthz")
        assert excinfo.value.transient
        assert len(calls) == 3  # 1 + retries(2)

    def test_retry_schedule_is_deterministic(self):
        a = ServiceClient("http://x", retries=3, retry_backoff=0.2)
        b = ServiceClient("http://x", retries=3, retry_backoff=0.2)
        assert a.retry.delays("/jobs") == b.retry.delays("/jobs")


class TestHttpChaosAndDeadlines:
    @pytest.fixture()
    def server(self, tmp_path):
        chaos = ChaosPlan(
            events=(ChaosEvent(site="http", key="GET /circuits"),)
        )
        server = make_server(
            tmp_path, workers=1, request_timeout=1.0, chaos=None
        )
        server.chaos = chaos
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)

    def test_chaos_route_serves_500_and_client_marks_it_transient(
        self, server
    ):
        client = ServiceClient(server.url, retries=1, retry_backoff=0.0)
        with pytest.raises(ServiceError) as excinfo:
            client.circuits()
        assert excinfo.value.status == 500
        assert excinfo.value.transient
        # Other routes are untouched by the plan.
        assert client.health()["ok"] is True

    def test_stalled_request_body_gets_408(self, server):
        """A client that sends headers but stalls mid-body is timed out
        instead of pinning a handler thread forever."""
        host, port = server.server_address[:2]
        with socket.create_connection((host, port), timeout=10.0) as sock:
            sock.sendall(
                b"POST /jobs HTTP/1.1\r\n"
                b"Host: x\r\nContent-Type: application/json\r\n"
                b"Content-Length: 100\r\n\r\n"
                b'{"circuit"'  # ...and never the rest
            )
            response = sock.recv(4096).decode("utf-8", "replace")
        assert "408" in response.splitlines()[0]
        assert "timed out" in response

    def test_request_timeout_validation(self, tmp_path):
        queue = JobQueue(tmp_path)
        scheduler = Scheduler(queue, workers=1)
        with pytest.raises(ConfigError):
            ServiceServer(("127.0.0.1", 0), scheduler, request_timeout=0.0)


class TestEventStreamShapes:
    def test_shard_retry_and_heartbeat_events_reach_the_job_log(
        self, tmp_path
    ):
        """Executor-level retries and heartbeats surface as job events."""
        queue = JobQueue(tmp_path)
        shard_chaos = ChaosPlan(
            events=(ChaosEvent(site="shard", key="1", attempts=(1,)),)
        ).to_json()
        spec = _spec(
            shards=2,
            shard_workers=1,
            retry_backoff=0.0,
            heartbeat_interval=0.001,
            chaos=shard_chaos,
        )
        scheduler = Scheduler(
            queue, workers=1, retry=RetryPolicy(max_attempts=1)
        ).start()
        try:
            job, _ = scheduler.submit(spec)
            finished = _wait_terminal(queue, job.id)
        finally:
            scheduler.stop()
        assert finished.state == "done"
        kinds = _kinds(finished)
        assert "shard-retry" in kinds
        assert "heartbeat" in kinds
        retry_event = next(
            e for e in finished.events if e["kind"] == "shard-retry"
        )
        assert retry_event["shard"] == 1
        assert retry_event["reason"] == "exception"
        assert retry_event["next_attempt"] == 2
        # The recovered run stored a complete artifact.
        assert queue.store.has(job.fingerprint)
        artifact = queue.store.get(job.fingerprint)
        assert Artifact.from_json(artifact.to_json()).campaign().outcomes

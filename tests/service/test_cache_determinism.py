"""Cache keys are process-invariant: fork, thread and HTTP agree.

The whole incremental-computation story rests on one property: the
fingerprint of a piece of work — and therefore its path inside a
:class:`repro.core.cache.ResultCache` — is a pure function of the work,
never of which process, thread or transport computed it.  These tests
hash the *same spec* in a fork-started worker process, a worker thread,
and through the live HTTP service, and require byte-identical
fingerprints and cache paths everywhere.
"""

import multiprocessing
import threading

import pytest

from repro.api import CampaignConfig
from repro.core.cache import ResultCache
from repro.core.sharding import campaign_fingerprint, shard_fingerprint
from repro.service.jobs import JobSpec
from repro.service.store import ArtifactStore

#: the one spec every leg hashes — tiny so the HTTP leg stays fast.
CAMPAIGN = CampaignConfig(faults_per_element=1, seed=3)


def _fingerprints() -> dict:
    """Every fingerprint flavour of the shared spec, plus cache paths."""
    spec = JobSpec(circuit="fig4", campaign=CAMPAIGN)
    job = spec.fingerprint()
    return {
        "job": job,
        "campaign": campaign_fingerprint("fig4-mixed", CAMPAIGN, []),
        "shard": shard_fingerprint("fig4-mixed", CAMPAIGN, []),
        # Path layout relative to an arbitrary root: identical roots
        # must map a fingerprint to identical files in every process.
        "store_path": str(
            ResultCache("/tmp/probe").path_for(ArtifactStore.NAMESPACE, job)
        ),
    }


def _child_leg(queue) -> None:
    queue.put(_fingerprints())


class TestCrossProcessDeterminism:
    def test_fork_worker_and_thread_agree_with_parent(self):
        parent = _fingerprints()

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        ctx = multiprocessing.get_context("fork")
        queue = ctx.Queue()
        worker = ctx.Process(target=_child_leg, args=(queue,))
        worker.start()
        forked = queue.get(timeout=60)
        worker.join(timeout=60)

        threaded: dict = {}
        thread = threading.Thread(
            target=lambda: threaded.update(_fingerprints())
        )
        thread.start()
        thread.join(timeout=60)

        assert forked == parent
        assert threaded == parent

    def test_store_and_cache_agree_on_the_path(self, tmp_path):
        # The ArtifactStore is a thin wrapper over ResultCache: the
        # same fingerprint must land on the same file through either.
        fingerprint = JobSpec(circuit="fig4", campaign=CAMPAIGN).fingerprint()
        store = ArtifactStore(tmp_path)
        cache = ResultCache(tmp_path)
        assert store.path_for(fingerprint) == cache.path_for(
            ArtifactStore.NAMESPACE, fingerprint
        )


class TestHttpServiceDeterminism:
    def test_service_reports_the_locally_computed_fingerprint(
        self, tmp_path
    ):
        from repro.service import ServiceClient
        from repro.service.http import make_server

        local = JobSpec(circuit="fig4", campaign=CAMPAIGN).fingerprint()
        server = make_server(tmp_path, workers=1)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            client = ServiceClient(server.url, timeout=60.0)
            job = client.submit("fig4", campaign=CAMPAIGN.as_dict())
            # The service hashed the spec in its own process; the key it
            # dedups and stores under must equal the local digest.
            assert job["fingerprint"] == local
            finished = client.wait(job["job_id"], timeout=300.0)
            assert finished["state"] == "done", finished.get("error")
            assert finished["artifact"] == local
            assert ArtifactStore(tmp_path).path_for(local).exists()
            # Resubmission over HTTP dedups against that same key.
            again = client.submit("fig4", campaign=CAMPAIGN.as_dict())
            assert again["fingerprint"] == local
            assert again["deduplicated"] is True
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)

"""The job model: spec fingerprints, the state machine, durability.

Everything here drives :class:`repro.service.JobQueue` directly — no
scheduler, no HTTP, no real campaigns — so the state machine's contract
is tested in isolation (and in milliseconds).
"""

import threading

import pytest

from repro.api import Artifact, CampaignConfig, ConfigError, GeneratorConfig
from repro.service import (
    JOB_STATES,
    TERMINAL_STATES,
    Job,
    JobQueue,
    JobSpec,
    JobStateError,
)


def _spec(**campaign) -> JobSpec:
    return JobSpec(
        circuit="fig4",
        campaign=CampaignConfig(faults_per_element=2, seed=3).replace(**campaign),
    )


class TestJobSpec:
    def test_document_round_trip(self):
        spec = _spec(severity_range=(0.5, 2.0), shards=3)
        assert JobSpec.from_document(spec.to_document()) == spec

    def test_partial_document_takes_defaults(self):
        spec = JobSpec.from_document({"circuit": "fig4"})
        assert spec.campaign == CampaignConfig()
        assert spec.generator == GeneratorConfig()

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigError):
            JobSpec.from_document({"circuit": "fig4", "bogus": {}})
        with pytest.raises(ConfigError):
            JobSpec.from_document({"circuit": "fig4", "campaign": {"nope": 1}})
        with pytest.raises(ConfigError):
            JobSpec.from_document({"campaign": {}})  # no circuit
        with pytest.raises(ConfigError):
            JobSpec.from_document({"circuit": "fig4", "campaign": [1, 2]})

    def test_fingerprint_covers_outcome_relevant_fields(self):
        base = _spec()
        assert base.fingerprint() == _spec().fingerprint()
        assert base.fingerprint() != _spec(seed=4).fingerprint()
        assert base.fingerprint() != _spec(faults_per_element=3).fingerprint()
        assert base.fingerprint() != _spec(engine="reference").fingerprint()

    def test_fingerprint_excludes_fanout_knobs(self):
        """Shard/worker/cache/checkpoint knobs never change outcomes —
        so they must not defeat deduplication."""
        base = _spec()
        assert base.fingerprint() == _spec(shards=7).fingerprint()
        assert base.fingerprint() == _spec(shard_workers=2).fingerprint()
        assert base.fingerprint() == _spec(max_workers=5).fingerprint()
        assert base.fingerprint() == _spec(factor_cache_size=3).fingerprint()
        assert (
            base.fingerprint()
            == _spec(checkpoint_dir="/tmp/elsewhere").fingerprint()
        )


class TestStateMachine:
    def test_lifecycle_queued_running_done(self, tmp_path):
        queue = JobQueue(tmp_path)
        job, deduplicated = queue.submit(_spec())
        assert not deduplicated
        assert job.state == "queued"
        queue.transition(job.id, "running")
        assert queue.get(job.id).started is not None
        queue.transition(job.id, "done")
        assert queue.get(job.id).finished is not None
        kinds = [e["kind"] for e in queue.get(job.id).events]
        assert kinds == ["submitted", "running", "done"]

    @pytest.mark.parametrize(
        "path",
        [
            ("queued", "done"),          # must pass through running
            ("queued", "failed"),
            ("queued", "retrying"),      # only a running job can retry
            ("running", "queued"),       # no going back
            ("retrying", "done"),        # must re-enter running first
            ("done", "running"),         # terminal states are terminal
            ("done", "cancelled"),
            ("failed", "running"),
            ("cancelled", "queued"),
        ],
    )
    def test_illegal_transitions_rejected(self, tmp_path, path):
        start, target = path
        queue = JobQueue(tmp_path)
        job, _ = queue.submit(_spec())
        # Walk the job legally into the starting state first.
        legal_walk = {
            "queued": (),
            "running": ("running",),
            "retrying": ("running", "retrying"),
            "done": ("running", "done"),
            "failed": ("running", "failed"),
            "cancelled": ("cancelled",),
        }[start]
        for state in legal_walk:
            queue.transition(job.id, state)
        with pytest.raises(JobStateError):
            queue.transition(job.id, target)
        assert queue.get(job.id).state == start  # unchanged on rejection

    def test_unknown_state_and_job_rejected(self, tmp_path):
        queue = JobQueue(tmp_path)
        job, _ = queue.submit(_spec())
        with pytest.raises(JobStateError):
            queue.transition(job.id, "paused")
        with pytest.raises(ConfigError):
            queue.transition("j999999-deadbeef", "running")
        with pytest.raises(ConfigError):
            queue.get("nope")
        with pytest.raises(JobStateError):
            queue.jobs(state="bogus")

    def test_cancel_queued_is_immediate(self, tmp_path):
        queue = JobQueue(tmp_path)
        job, _ = queue.submit(_spec())
        assert queue.cancel(job.id).state == "cancelled"
        with pytest.raises(JobStateError):
            queue.cancel(job.id)  # already terminal

    def test_cancel_running_sets_the_flag(self, tmp_path):
        queue = JobQueue(tmp_path)
        job, _ = queue.submit(_spec())
        queue.transition(job.id, "running")
        cancelled = queue.cancel(job.id)
        assert cancelled.state == "running"  # best-effort: still running
        assert cancelled.cancel_requested
        queue.transition(job.id, "cancelled")
        assert queue.get(job.id).state == "cancelled"


class TestDeduplication:
    def test_active_job_absorbs_identical_submissions(self, tmp_path):
        queue = JobQueue(tmp_path)
        first, _ = queue.submit(_spec())
        second, deduplicated = queue.submit(_spec(shards=5))  # same work
        assert deduplicated
        assert second.id == first.id
        assert len(queue.jobs()) == 1

    def test_concurrent_identical_submissions_create_one_job(self, tmp_path):
        queue = JobQueue(tmp_path)
        results = []
        barrier = threading.Barrier(8)

        def submitter():
            barrier.wait()
            results.append(queue.submit(_spec()))

        threads = [threading.Thread(target=submitter) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len({job.id for job, _ in results}) == 1
        assert sum(1 for _, deduplicated in results if not deduplicated) == 1
        assert len(queue.jobs()) == 1

    def test_stored_result_births_a_done_job(self, tmp_path):
        queue = JobQueue(tmp_path)
        spec = _spec()
        artifact = Artifact(kind="campaign", circuit="fig4", payload={"outcomes": []})
        queue.store.put(spec.fingerprint(), artifact)
        job, deduplicated = queue.submit(spec)
        assert deduplicated
        assert job.state == "done"
        assert job.served_from_store
        assert job.artifact == spec.fingerprint()

    def test_terminal_jobs_do_not_absorb_resubmissions(self, tmp_path):
        """A failed job must not swallow a retry of the same work."""
        queue = JobQueue(tmp_path)
        first, _ = queue.submit(_spec())
        queue.transition(first.id, "running")
        queue.transition(first.id, "failed", error="boom")
        retry, deduplicated = queue.submit(_spec())
        assert not deduplicated
        assert retry.id != first.id
        assert retry.state == "queued"


class TestDurability:
    def test_restart_reloads_jobs_and_requeues_running(self, tmp_path):
        queue = JobQueue(tmp_path)
        queued, _ = queue.submit(_spec(seed=1))
        running, _ = queue.submit(_spec(seed=2))
        done, _ = queue.submit(_spec(seed=3))
        queue.transition(running.id, "running")
        queue.transition(done.id, "running")
        queue.transition(done.id, "done")

        reloaded = JobQueue(tmp_path)  # the "restart"
        states = {job.id: job.state for job in reloaded.jobs()}
        assert states[queued.id] == "queued"
        assert states[done.id] == "done"
        # The job caught mid-run re-queues (its process died); the
        # recovery is recorded in its event log.
        assert states[running.id] == "queued"
        kinds = [e["kind"] for e in reloaded.get(running.id).events]
        assert kinds[-1] == "recovered"

    def test_restart_never_reissues_job_ids(self, tmp_path):
        queue = JobQueue(tmp_path)
        first, _ = queue.submit(_spec(seed=1))
        reloaded = JobQueue(tmp_path)
        second, _ = reloaded.submit(_spec(seed=2))
        assert second.id != first.id
        assert second.id > first.id  # ids keep sorting by submission

    def test_torn_job_files_are_skipped(self, tmp_path):
        queue = JobQueue(tmp_path)
        job, _ = queue.submit(_spec())
        (tmp_path / "jobs" / "j999999-feedface.json").write_text('{"torn')
        reloaded = JobQueue(tmp_path)
        assert [j.id for j in reloaded.jobs()] == [job.id]


class TestEvents:
    def test_events_since_is_incremental(self, tmp_path):
        queue = JobQueue(tmp_path)
        job, _ = queue.submit(_spec())
        queue.append_event(job.id, "shard", shard=0)
        queue.append_event(job.id, "shard", shard=1)
        assert [e["kind"] for e in queue.events_since(job.id)] == [
            "submitted", "shard", "shard",
        ]
        tail = queue.events_since(job.id, after=0)
        assert [e["shard"] for e in tail] == [0, 1]
        assert queue.events_since(job.id, after=tail[-1]["seq"]) == []

    def test_stream_yields_until_terminal(self, tmp_path):
        queue = JobQueue(tmp_path)
        job, _ = queue.submit(_spec())

        def worker():
            queue.transition(job.id, "running")
            queue.append_event(job.id, "shard", shard=0)
            queue.transition(job.id, "done")

        thread = threading.Thread(target=worker)
        thread.start()
        kinds = [e["kind"] for e in queue.stream(job.id, timeout=10.0)]
        thread.join()
        assert kinds == ["submitted", "running", "shard", "done"]

    def test_state_constants_are_consistent(self):
        assert set(TERMINAL_STATES) < set(JOB_STATES)

    def test_job_document_round_trip_keeps_events(self, tmp_path):
        queue = JobQueue(tmp_path)
        job, _ = queue.submit(_spec())
        queue.append_event(job.id, "shard", shard=0)
        restored = Job.from_document(queue.get(job.id).to_document())
        assert restored == queue.get(job.id)
        assert [e["kind"] for e in restored.events] == ["submitted", "shard"]

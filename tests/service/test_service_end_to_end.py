"""The service end to end: HTTP round trips against a live server.

One module-scoped server runs one real (small, seeded) fig4 campaign;
every test reuses that execution.  The two acceptance criteria proved
here:

* the artifact fetched over HTTP carries a payload **byte-identical**
  to ``run_campaign`` executed in-process with the same configs;
* resubmitting the identical spec is served from the store without
  recomputation, verified by the scheduler's engine-invocation counters.
"""

import json
import threading

import pytest

from repro.api import Artifact, CampaignConfig
from repro.api.cli import main
from repro.api.session import Workbench
from repro.core import run_campaign
from repro.service import ServiceClient, ServiceError
from repro.service.http import make_server

#: the one campaign every test shares — small, seeded, sharded.
CAMPAIGN = CampaignConfig(faults_per_element=2, seed=11, shards=2)


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    """A live server (ephemeral port) over a fresh store root."""
    root = tmp_path_factory.mktemp("service-root")
    server = make_server(root, workers=2)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)


@pytest.fixture(scope="module")
def client(service):
    return ServiceClient(service.url, timeout=60.0)


@pytest.fixture(scope="module")
def done_job(client):
    """The shared real execution: submitted once, awaited to ``done``."""
    job = client.submit("fig4", campaign=CAMPAIGN.as_dict())
    finished = client.wait(job["job_id"], timeout=300.0)
    assert finished["state"] == "done", finished.get("error")
    return finished


@pytest.fixture(scope="module")
def direct_payload():
    """The same campaign computed in-process, no service involved."""
    session = Workbench().session()
    mixed = session.circuit("fig4")
    generated = session.run(
        mixed, stages=("sensitivity", "stimulus"), campaign=CAMPAIGN
    )
    result = run_campaign(mixed, generated.report, config=CAMPAIGN)
    return Artifact.from_campaign(result, circuit=mixed.name).payload


class TestRoundTrip:
    def test_served_payload_is_byte_identical_to_direct_run(
        self, client, done_job, direct_payload
    ):
        text = client.artifact_text(done_job["artifact"])
        served = json.loads(text)["payload"]
        assert json.dumps(served, sort_keys=True) == json.dumps(
            direct_payload, sort_keys=True
        )

    def test_artifact_route_serves_stored_bytes_verbatim(
        self, service, client, done_job
    ):
        stored = service.scheduler.queue.store.path_for(
            done_job["artifact"]
        ).read_text()
        assert client.artifact_text(done_job["artifact"]) == stored

    def test_artifact_decodes_with_service_provenance(self, client, done_job):
        artifact = client.artifact(done_job["artifact"])
        assert artifact.kind == "campaign"
        service_meta = artifact.meta["service"]
        assert service_meta["job_id"] == done_job["job_id"]
        assert service_meta["fingerprint"] == done_job["fingerprint"]
        # aliases canonicalize before execution ("fig4" is canonical)
        assert service_meta["spec"]["circuit"] == "fig4"

    def test_job_streams_per_shard_progress(self, client, done_job):
        kinds = [e["kind"] for e in client.events(done_job["job_id"])["events"]]
        assert kinds[0] == "submitted"
        assert kinds[-1] == "done"
        assert "generated" in kinds
        assert kinds.count("shard") == CAMPAIGN.shards
        assert "campaign" in kinds


class TestDeduplication:
    def test_resubmission_is_served_from_store_without_recomputation(
        self, client, done_job
    ):
        before = client.health()["scheduler"]
        # Different fan-out knobs, different alias — same work.
        again = client.submit(
            "fig4-mixed",
            campaign={**CAMPAIGN.as_dict(), "shards": 5, "max_workers": 3},
        )
        assert again["deduplicated"]
        assert again["fingerprint"] == done_job["fingerprint"]
        finished = client.wait(again["job_id"], timeout=30.0)
        assert finished["state"] == "done"
        assert finished["served_from_store"]
        after = client.health()["scheduler"]
        assert after["executions"] == before["executions"]  # nothing ran

    def test_concurrent_identical_submissions_execute_once(self, client):
        executions_before = client.health()["scheduler"]["executions"]
        campaign = CAMPAIGN.replace(seed=12).as_dict()  # fresh fingerprint
        rows = []
        barrier = threading.Barrier(6)

        def submitter():
            barrier.wait()
            rows.append(client.submit("fig4", campaign=campaign))

        threads = [threading.Thread(target=submitter) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len({row["job_id"] for row in rows}) == 1
        assert sum(1 for row in rows if not row["deduplicated"]) == 1
        client.wait(rows[0]["job_id"], timeout=300.0)
        executions_after = client.health()["scheduler"]["executions"]
        assert executions_after == executions_before + 1


class TestErrorContract:
    def test_unknown_circuit_is_404_with_suggestion(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.submit("fig5", campaign={"faults_per_element": 2})
        assert excinfo.value.status == 404  # UnknownNameError -> not found
        assert "did you mean" in str(excinfo.value)

    def test_malformed_config_is_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.submit("fig4", campaign={"faults_per_element": -1})
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            client.submit("fig4", campaign={"bogus_knob": 1})
        assert excinfo.value.status == 400

    def test_digital_circuit_is_rejected_at_submission(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.submit("c432")
        assert excinfo.value.status == 400
        assert "mixed" in str(excinfo.value)

    def test_unknown_job_and_artifact_are_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.status("j999999-deadbeef")
        assert excinfo.value.status == 400  # ConfigError: unknown job
        with pytest.raises(ServiceError) as excinfo:
            client.artifact_text("0" * 64)
        assert excinfo.value.status == 404

    def test_bad_fingerprint_shape_is_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.artifact_text("not-a-digest")
        assert excinfo.value.status == 400

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._json("GET", "/nope")
        assert excinfo.value.status == 404

    def test_circuit_listing_matches_registry(self, service, client):
        names = {row["name"] for row in client.circuits(kind="mixed")}
        registry = service.scheduler.workbench.registry
        assert names == {spec.name for spec in registry.specs("mixed")}


class TestCliAgainstLiveService:
    def test_submit_wait_fetch_round_trip(
        self, service, client, done_job, tmp_path, capsys
    ):
        out = tmp_path / "served.json"
        code = main(
            [
                "submit", "fig4",
                "--url", service.url,
                "--faults-per-element", str(CAMPAIGN.faults_per_element),
                "--seed", str(CAMPAIGN.seed),
                "--shards", str(CAMPAIGN.shards),
                "--wait", "--json", str(out),
            ]
        )
        assert code == 0
        assert "done" in capsys.readouterr().out
        document = json.loads(out.read_text())
        assert document["kind"] == "campaign"
        assert document["meta"]["service"]["fingerprint"] == done_job["fingerprint"]

    def test_status_lists_jobs(self, service, done_job, capsys):
        assert main(["status", "--url", service.url]) == 0
        out = capsys.readouterr().out
        assert done_job["job_id"] in out
        assert main(["status", done_job["job_id"], "--url", service.url]) == 0
        assert "done" in capsys.readouterr().out

    def test_fetch_writes_the_served_bytes(
        self, service, client, done_job, tmp_path, capsys
    ):
        out = tmp_path / "fetched.json"
        code = main(
            ["fetch", done_job["artifact"], "--url", service.url,
             "--json", str(out)]
        )
        assert code == 0
        assert out.read_text() == client.artifact_text(done_job["artifact"])

    def test_service_errors_exit_2(self, service, capsys):
        assert main(["submit", "fig5", "--url", service.url]) == 2
        assert "did you mean" in capsys.readouterr().err
        assert main(["fetch", "nope", "--url", service.url]) == 2
        assert "fingerprint" in capsys.readouterr().err
        assert main(["status", "j000000-missing", "--url", service.url]) == 2
        capsys.readouterr()

    def test_unreachable_service_exits_2(self, capsys):
        assert main(["status", "--url", "http://127.0.0.1:9"]) == 2
        assert "cannot reach service" in capsys.readouterr().err

"""Tests for the higher-level BDD operations."""

import pytest

from repro.bdd import (
    FALSE,
    TRUE,
    BddManager,
    constraint_from_terms,
    cofactor_generalized,
    equivalent,
    is_contradiction,
    is_tautology,
    minimize_path,
    project,
)


@pytest.fixture()
def mgr():
    return BddManager(["a", "b", "c"])


class TestConstraintFromTerms:
    def test_empty_terms_is_false(self, mgr):
        assert constraint_from_terms(mgr, []) == FALSE

    def test_single_empty_term_is_true(self, mgr):
        # The paper: "if all the assignments are allowed, Fc = 1".
        assert constraint_from_terms(mgr, [{}]) == TRUE

    def test_terms_are_summed(self, mgr):
        fc = constraint_from_terms(mgr, [{"a": 1}, {"b": 1}])
        assert fc == mgr.or_(mgr.var("a"), mgr.var("b"))

    def test_product_terms(self, mgr):
        fc = constraint_from_terms(mgr, [{"a": 1, "b": 0}])
        assert mgr.evaluate(fc, {"a": 1, "b": 0, "c": 0}) == 1
        assert mgr.evaluate(fc, {"a": 1, "b": 1, "c": 0}) == 0


class TestMinimizePath:
    def test_none_for_false(self, mgr):
        assert minimize_path(mgr, FALSE) is None

    def test_prefers_given_values(self, mgr):
        f = mgr.or_(mgr.var("a"), mgr.var("b"))
        path = minimize_path(mgr, f, preferred={"a": 0, "b": 1})
        full = {"a": 0, "b": 0, "c": 0}
        full.update(path)
        assert mgr.evaluate(f, full) == 1
        assert path.get("a", 0) == 0  # honored the preference

    def test_defaults_to_zero(self, mgr):
        f = mgr.or_(mgr.var("a"), mgr.not_(mgr.var("b")))
        path = minimize_path(mgr, f)
        assert path.get("a", 0) == 0  # chose the b=0 branch instead


class TestProject:
    def test_project_drops_variables(self, mgr):
        f = mgr.and_(mgr.var("a"), mgr.var("b"))
        g = project(mgr, f, ["a"])
        assert g == mgr.var("a")

    def test_project_keep_all_is_identity(self, mgr):
        f = mgr.xor(mgr.var("a"), mgr.var("b"))
        assert project(mgr, f, ["a", "b"]) == f


class TestGeneralizedCofactor:
    def test_cube_care_restricts(self, mgr):
        f = mgr.and_(mgr.var("a"), mgr.var("b"))
        care = mgr.cube({"a": 1})
        assert cofactor_generalized(mgr, f, care) == mgr.var("b")

    def test_false_care(self, mgr):
        assert cofactor_generalized(mgr, mgr.var("a"), FALSE) == FALSE

    def test_non_cube_care_falls_back_to_product(self, mgr):
        f = mgr.var("a")
        care = mgr.or_(mgr.var("b"), mgr.var("c"))
        assert cofactor_generalized(mgr, f, care) == mgr.and_(f, care)


class TestPredicates:
    def test_tautology_contradiction(self):
        assert is_tautology(TRUE)
        assert not is_tautology(FALSE)
        assert is_contradiction(FALSE)
        assert not is_contradiction(TRUE)

    def test_equivalent_is_node_equality(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        assert equivalent(mgr.and_(a, b), mgr.and_(b, a))
        assert not equivalent(a, b)

"""Tests for the variable-ordering heuristics."""

from repro.bdd import declaration_order, fanin_order, interleaved_order


FANINS = {
    "g1": ("a", "b"),
    "g2": ("g1", "c"),
    "g3": ("d", "e"),
    "out1": ("g2", "g3"),
    "out2": ("g3", "f"),
}
INPUTS = ["a", "b", "c", "d", "e", "f", "unused"]


class TestFaninOrder:
    def test_is_permutation_of_inputs(self):
        order = fanin_order(["out1", "out2"], FANINS, INPUTS)
        assert sorted(order) == sorted(INPUTS)

    def test_dfs_visits_first_cone_first(self):
        order = fanin_order(["out1"], FANINS, INPUTS)
        # out1's first fan-in chain is g2 -> g1 -> a.
        assert order[0] == "a"
        assert order.index("a") < order.index("d")

    def test_unreached_inputs_appended(self):
        order = fanin_order(["out1", "out2"], FANINS, INPUTS)
        assert order[-1] == "unused"

    def test_no_outputs_yields_declaration(self):
        assert fanin_order([], FANINS, INPUTS) == INPUTS


class TestInterleavedOrder:
    def test_is_permutation(self):
        order = interleaved_order(["out1", "out2"], FANINS, INPUTS)
        assert sorted(order) == sorted(INPUTS)

    def test_round_robin_mixes_cones(self):
        order = interleaved_order(["out1", "out2"], FANINS, INPUTS)
        # out2's first input (d) appears before out1's last input.
        assert order.index("d") < order.index("c") or order.index(
            "d"
        ) < order.index("e")


class TestDeclarationOrder:
    def test_identity(self):
        assert declaration_order(INPUTS) == INPUTS
        assert declaration_order([]) == []

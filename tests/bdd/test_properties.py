"""Property-based tests of the BDD engine against truth-table semantics."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import FALSE, TRUE, BddManager

VARIABLES = ["v0", "v1", "v2", "v3", "v4"]


def expressions(depth: int = 4):
    """Random Boolean expression trees as nested tuples."""
    leaves = st.sampled_from([("var", name) for name in VARIABLES] + [
        ("const", 0), ("const", 1),
    ])

    def extend(children):
        return st.one_of(
            st.tuples(st.just("not"), children),
            st.tuples(st.sampled_from(["and", "or", "xor"]), children, children),
        )

    return st.recursive(leaves, extend, max_leaves=12)


def build(mgr: BddManager, expr) -> int:
    op = expr[0]
    if op == "var":
        return mgr.var(expr[1])
    if op == "const":
        return TRUE if expr[1] else FALSE
    if op == "not":
        return mgr.not_(build(mgr, expr[1]))
    lhs, rhs = build(mgr, expr[1]), build(mgr, expr[2])
    if op == "and":
        return mgr.and_(lhs, rhs)
    if op == "or":
        return mgr.or_(lhs, rhs)
    return mgr.xor(lhs, rhs)


def evaluate_expr(expr, assignment) -> int:
    op = expr[0]
    if op == "var":
        return assignment[expr[1]]
    if op == "const":
        return expr[1]
    if op == "not":
        return 1 - evaluate_expr(expr[1], assignment)
    lhs = evaluate_expr(expr[1], assignment)
    rhs = evaluate_expr(expr[2], assignment)
    if op == "and":
        return lhs & rhs
    if op == "or":
        return lhs | rhs
    return lhs ^ rhs


@given(expressions())
@settings(max_examples=150, deadline=None)
def test_bdd_matches_truth_table(expr):
    """The BDD evaluates identically to direct expression evaluation."""
    mgr = BddManager(VARIABLES)
    f = build(mgr, expr)
    for bits in itertools.product((0, 1), repeat=len(VARIABLES)):
        assignment = dict(zip(VARIABLES, bits))
        assert mgr.evaluate(f, assignment) == evaluate_expr(expr, assignment)


@given(expressions(), expressions())
@settings(max_examples=80, deadline=None)
def test_canonicity(e1, e2):
    """Two expressions are the same node iff they are the same function."""
    mgr = BddManager(VARIABLES)
    f1, f2 = build(mgr, e1), build(mgr, e2)
    equal_function = all(
        evaluate_expr(e1, dict(zip(VARIABLES, bits)))
        == evaluate_expr(e2, dict(zip(VARIABLES, bits)))
        for bits in itertools.product((0, 1), repeat=len(VARIABLES))
    )
    assert (f1 == f2) == equal_function


@given(expressions())
@settings(max_examples=80, deadline=None)
def test_sat_count_matches_enumeration(expr):
    mgr = BddManager(VARIABLES)
    f = build(mgr, expr)
    expected = sum(
        evaluate_expr(expr, dict(zip(VARIABLES, bits)))
        for bits in itertools.product((0, 1), repeat=len(VARIABLES))
    )
    assert mgr.sat_count(f) == expected


@given(expressions(), st.sampled_from(VARIABLES), st.integers(0, 1))
@settings(max_examples=80, deadline=None)
def test_restrict_semantics(expr, name, value):
    """f|x=v evaluates like f with x pinned."""
    mgr = BddManager(VARIABLES)
    f = build(mgr, expr)
    restricted = mgr.restrict(f, name, value)
    for bits in itertools.product((0, 1), repeat=len(VARIABLES)):
        assignment = dict(zip(VARIABLES, bits))
        pinned = dict(assignment)
        pinned[name] = value
        assert mgr.evaluate(restricted, assignment) == mgr.evaluate(f, pinned)


@given(expressions())
@settings(max_examples=60, deadline=None)
def test_shannon_expansion(expr):
    """f == x·f|x=1 + x̄·f|x=0 for the top variable."""
    mgr = BddManager(VARIABLES)
    f = build(mgr, expr)
    if f in (TRUE, FALSE):
        return
    name = mgr.top_var(f)
    f0, f1 = mgr.cofactors(f, name)
    rebuilt = mgr.ite(mgr.var(name), f1, f0)
    assert rebuilt == f


@given(expressions())
@settings(max_examples=60, deadline=None)
def test_any_sat_is_satisfying(expr):
    mgr = BddManager(VARIABLES)
    f = build(mgr, expr)
    assignment = mgr.any_sat(f)
    if assignment is None:
        assert f == FALSE
    else:
        full = {name: 0 for name in VARIABLES}
        full.update(assignment)
        assert mgr.evaluate(f, full) == 1


@given(expressions(), st.sampled_from(VARIABLES))
@settings(max_examples=60, deadline=None)
def test_boolean_difference_detects_dependence(expr, name):
    """∂f/∂x == 0 iff f is independent of x."""
    mgr = BddManager(VARIABLES)
    f = build(mgr, expr)
    diff = mgr.boolean_difference(f, name)
    independent = all(
        evaluate_expr(expr, {**dict(zip(VARIABLES, bits)), name: 0})
        == evaluate_expr(expr, {**dict(zip(VARIABLES, bits)), name: 1})
        for bits in itertools.product((0, 1), repeat=len(VARIABLES))
    )
    assert (diff == FALSE) == independent

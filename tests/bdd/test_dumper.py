"""Tests for the DOT and text renderers."""

from repro.bdd import FALSE, TRUE, BddManager, to_dot, to_text


def test_dot_contains_nodes_and_edges():
    mgr = BddManager(["x", "y"])
    f = mgr.and_(mgr.var("x"), mgr.var("y"))
    dot = to_dot(mgr, f, name="g")
    assert dot.startswith("digraph g {")
    assert 'label="x"' in dot
    assert 'label="y"' in dot
    assert "style=dashed" in dot and "style=solid" in dot


def test_dot_terminals_always_present():
    mgr = BddManager(["x"])
    dot = to_dot(mgr, mgr.var("x"))
    assert 'node0 [label="0"' in dot
    assert 'node1 [label="1"' in dot


def test_text_constants():
    mgr = BddManager(["x"])
    assert to_text(mgr, TRUE) == "const 1"
    assert to_text(mgr, FALSE) == "const 0"


def test_text_stable_for_equal_functions():
    mgr = BddManager(["x", "y"])
    f1 = mgr.and_(mgr.var("x"), mgr.var("y"))
    f2 = mgr.and_(mgr.var("y"), mgr.var("x"))
    assert to_text(mgr, f1) == to_text(mgr, f2)


def test_text_mentions_variables():
    mgr = BddManager(["x", "y"])
    text = to_text(mgr, mgr.xor(mgr.var("x"), mgr.var("y")))
    assert "x ?" in text
    assert "root" in text

"""Unit tests for the ROBDD manager."""

import pytest

from repro.bdd import FALSE, TRUE, BddError, BddManager


@pytest.fixture()
def mgr():
    return BddManager(["a", "b", "c"])


class TestVariables:
    def test_var_returns_canonical_node(self, mgr):
        assert mgr.var("a") == mgr.var("a")

    def test_nvar_is_complement(self, mgr):
        assert mgr.nvar("a") == mgr.not_(mgr.var("a"))

    def test_duplicate_declaration_rejected(self, mgr):
        with pytest.raises(BddError):
            mgr.add_variable("a")

    def test_new_variable_appends_to_order(self, mgr):
        mgr.var("z")
        assert mgr.variable_order == ("a", "b", "c", "z")

    def test_level_of_unknown_raises(self, mgr):
        with pytest.raises(BddError):
            mgr.level_of("nope")

    def test_has_variable(self, mgr):
        assert mgr.has_variable("a")
        assert not mgr.has_variable("q")


class TestConnectives:
    def test_and_truth(self, mgr):
        f = mgr.and_(mgr.var("a"), mgr.var("b"))
        assert mgr.evaluate(f, {"a": 1, "b": 1}) == 1
        assert mgr.evaluate(f, {"a": 1, "b": 0}) == 0

    def test_or_truth(self, mgr):
        f = mgr.or_(mgr.var("a"), mgr.var("b"))
        assert mgr.evaluate(f, {"a": 0, "b": 0}) == 0
        assert mgr.evaluate(f, {"a": 0, "b": 1}) == 1

    def test_xor_xnor_complementary(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        assert mgr.not_(mgr.xor(a, b)) == mgr.xnor(a, b)

    def test_empty_and_is_true(self, mgr):
        assert mgr.and_() == TRUE

    def test_empty_or_is_false(self, mgr):
        assert mgr.or_() == FALSE

    def test_nand_nor(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        assert mgr.nand(a, b) == mgr.not_(mgr.and_(a, b))
        assert mgr.nor(a, b) == mgr.not_(mgr.or_(a, b))

    def test_implies(self, mgr):
        f = mgr.implies(mgr.var("a"), mgr.var("b"))
        assert mgr.evaluate(f, {"a": 1, "b": 0}) == 0
        assert mgr.evaluate(f, {"a": 0, "b": 0}) == 1

    def test_double_negation(self, mgr):
        a = mgr.var("a")
        assert mgr.not_(mgr.not_(a)) == a

    def test_ite_identity_cases(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        assert mgr.ite(TRUE, a, b) == a
        assert mgr.ite(FALSE, a, b) == b
        assert mgr.ite(a, TRUE, FALSE) == a
        assert mgr.ite(a, b, b) == b


class TestCanonicity:
    def test_structural_sharing(self, mgr):
        # Same function built two ways interns to the same node.
        a, b = mgr.var("a"), mgr.var("b")
        f1 = mgr.not_(mgr.and_(a, b))
        f2 = mgr.or_(mgr.not_(a), mgr.not_(b))  # De Morgan
        assert f1 == f2

    def test_tautology_collapses_to_true(self, mgr):
        a = mgr.var("a")
        assert mgr.or_(a, mgr.not_(a)) == TRUE

    def test_contradiction_collapses_to_false(self, mgr):
        a = mgr.var("a")
        assert mgr.and_(a, mgr.not_(a)) == FALSE


class TestStructuralOps:
    def test_restrict(self, mgr):
        f = mgr.and_(mgr.var("a"), mgr.var("b"))
        assert mgr.restrict(f, "a", 1) == mgr.var("b")
        assert mgr.restrict(f, "a", 0) == FALSE

    def test_restrict_bad_value(self, mgr):
        with pytest.raises(BddError):
            mgr.restrict(mgr.var("a"), "a", 2)

    def test_cofactors(self, mgr):
        f = mgr.or_(mgr.var("a"), mgr.var("b"))
        f0, f1 = mgr.cofactors(f, "a")
        assert f0 == mgr.var("b")
        assert f1 == TRUE

    def test_compose(self, mgr):
        f = mgr.and_(mgr.var("a"), mgr.var("b"))
        g = mgr.or_(mgr.var("b"), mgr.var("c"))
        composed = mgr.compose(f, "a", g)
        # (b+c)·b == b
        assert composed == mgr.var("b")

    def test_exists_forall(self, mgr):
        f = mgr.and_(mgr.var("a"), mgr.var("b"))
        assert mgr.exists(f, ["a"]) == mgr.var("b")
        assert mgr.forall(f, ["a"]) == FALSE

    def test_boolean_difference_xor_depends(self, mgr):
        f = mgr.xor(mgr.var("a"), mgr.var("b"))
        assert mgr.boolean_difference(f, "a") == TRUE

    def test_boolean_difference_independent(self, mgr):
        f = mgr.var("b")
        assert mgr.boolean_difference(f, "a") == FALSE

    def test_depends_on(self, mgr):
        f = mgr.and_(mgr.var("a"), mgr.var("c"))
        assert mgr.depends_on(f, "a")
        assert not mgr.depends_on(f, "b")

    def test_support(self, mgr):
        f = mgr.ite(mgr.var("a"), mgr.var("b"), mgr.var("c"))
        assert mgr.support(f) == {"a", "b", "c"}

    def test_size_counts_internal_nodes(self, mgr):
        assert mgr.size(TRUE) == 0
        assert mgr.size(mgr.var("a")) == 1


class TestSat:
    def test_any_sat_none_for_false(self, mgr):
        assert mgr.any_sat(FALSE) is None

    def test_any_sat_satisfies(self, mgr):
        f = mgr.and_(mgr.var("a"), mgr.nvar("b"))
        assignment = mgr.any_sat(f)
        assert mgr.evaluate(f, {**{"a": 0, "b": 0, "c": 0}, **assignment}) == 1

    def test_all_sats_count(self, mgr):
        f = mgr.or_(mgr.var("a"), mgr.var("b"))
        sats = list(mgr.all_sats(f, ["a", "b"]))
        assert len(sats) == 3

    def test_all_sats_missing_support_raises(self, mgr):
        f = mgr.var("a")
        with pytest.raises(BddError):
            list(mgr.all_sats(f, ["b"]))

    def test_sat_count(self, mgr):
        f = mgr.or_(mgr.var("a"), mgr.var("b"))
        # Over 3 declared variables: 3 * 2 = 6 minterms.
        assert mgr.sat_count(f) == 6
        assert mgr.sat_count(f, 2) == 3

    def test_sat_count_constants(self, mgr):
        assert mgr.sat_count(TRUE) == 8
        assert mgr.sat_count(FALSE) == 0

    def test_evaluate_missing_binding_raises(self, mgr):
        f = mgr.var("a")
        with pytest.raises(BddError):
            mgr.evaluate(f, {})


class TestBuilders:
    def test_cube(self, mgr):
        f = mgr.cube({"a": 1, "b": 0})
        assert mgr.evaluate(f, {"a": 1, "b": 0, "c": 0}) == 1
        assert mgr.evaluate(f, {"a": 1, "b": 1, "c": 0}) == 0

    def test_from_minterms(self, mgr):
        f = mgr.from_minterms(["a", "b"], [0b10])
        assert f == mgr.cube({"a": 1, "b": 0})

    def test_from_truth_table(self, mgr):
        # XOR truth table over (a, b).
        f = mgr.from_truth_table(["a", "b"], [0, 1, 1, 0])
        assert f == mgr.xor(mgr.var("a"), mgr.var("b"))

    def test_from_truth_table_wrong_length(self, mgr):
        with pytest.raises(BddError):
            mgr.from_truth_table(["a"], [0, 1, 1])

    def test_node_info_terminal_raises(self, mgr):
        with pytest.raises(BddError):
            mgr.node_info(TRUE)

    def test_clear_operation_cache_keeps_nodes(self, mgr):
        f = mgr.and_(mgr.var("a"), mgr.var("b"))
        mgr.clear_operation_cache()
        assert mgr.and_(mgr.var("a"), mgr.var("b")) == f


class TestOperationCache:
    def test_cache_stats_counters_move(self):
        mgr = BddManager(["a", "b", "c"])
        stats = mgr.cache_stats()
        assert stats["ite_hits"] == 0 and stats["ite_bound"] is None
        f = mgr.and_(mgr.var("a"), mgr.var("b"))
        # One non-trivial ite was computed: exactly one miss, no
        # double-count from the pre-probe in ite().
        assert mgr.cache_stats()["ite_misses"] == 1
        mgr.and_(mgr.var("a"), mgr.var("b"))  # memoized second time around
        after = mgr.cache_stats()
        assert after["ite_misses"] == 1
        assert after["ite_hits"] == 1
        assert after["unique_misses"] > 0
        assert after["nodes"] == len(mgr)
        assert mgr.evaluate(f, {"a": 1, "b": 1}) == 1

    def test_bounded_cache_evicts_but_stays_correct(self):
        mgr = BddManager([f"x{i}" for i in range(10)], ite_cache_size=4)
        acc = TRUE
        for i in range(10):
            acc = mgr.and_(acc, mgr.var(f"x{i}"))
        stats = mgr.cache_stats()
        assert stats["ite_bound"] == 4
        assert stats["ite_size"] <= 4
        assignment = {f"x{i}": 1 for i in range(10)}
        assert mgr.evaluate(acc, assignment) == 1
        assignment["x3"] = 0
        assert mgr.evaluate(acc, assignment) == 0

    def test_invalid_bound_rejected(self):
        with pytest.raises(BddError):
            BddManager(ite_cache_size=0)

    def test_clear_operation_cache_resets_size(self):
        mgr = BddManager(["a", "b"], ite_cache_size=8)
        mgr.and_(mgr.var("a"), mgr.var("b"))
        mgr.clear_operation_cache()
        assert mgr.cache_stats()["ite_size"] == 0

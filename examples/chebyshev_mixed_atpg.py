#!/usr/bin/env python3
"""Example 3 walkthrough: the Chebyshev mixed circuit end-to-end.

Drives the paper's big example — fifth-order Chebyshev filter, the
15-comparator conversion block, an ISCAS85-class digital block — through
the workbench API, reporting per analog element: the targeted parameter,
the stimulus, the activating comparator, and the digital vector that
routes the composite value to a primary output.

Run:  python examples/chebyshev_mixed_atpg.py [circuit-name]
"""

import sys

from repro.api import Workbench
from repro.core import format_table


def main(name: str = "c432") -> None:
    session = Workbench().session()
    mixed = session.circuit(f"example3-{name}")
    print(f"mixed circuit: {mixed.name}")
    for key, value in mixed.stats().items():
        print(f"  {key:18s} {value}")

    print("\nanalog tests + comparator observability "
          "(this takes a couple of minutes):")
    result = session.run(mixed, stages=("sensitivity", "stimulus", "conversion"))

    observability = result.report.comparator_observability
    marks = ["ok" if ok else "BLOCKED" for ok in observability]
    print(
        format_table(
            ["comparator"] + [f"Vt{i + 1}" for i in range(len(marks))],
            [["D propagates?"] + marks],
        )
    )

    rows = []
    for test in result.report.analog_tests:
        rows.append(
            [
                test.element,
                test.status.value,
                test.parameter or "-",
                test.ed_percent,
                "-" if test.comparator_index is None
                else f"Vt{test.comparator_index + 1}",
                "-" if test.observing_output is None else test.observing_output,
            ]
        )
    print(
        format_table(
            ["element", "status", "parameter", "ED[%]", "comparator",
             "observe"],
            rows,
        )
    )
    print()
    print(result.outcome.timing_table())


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "c432")

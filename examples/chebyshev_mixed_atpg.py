#!/usr/bin/env python3
"""Example 3 walkthrough: the Chebyshev mixed circuit end-to-end.

Assembles the paper's big example — fifth-order Chebyshev filter, the
15-comparator conversion block, an ISCAS85-class digital block — and
runs the mixed-signal generator on the analog elements, reporting per
element: the targeted parameter, the stimulus, the activating
comparator, and the digital vector that routes the composite value to a
primary output.

Run:  python examples/chebyshev_mixed_atpg.py [circuit-name]
"""

import sys

from repro.circuits import example3_mixed_circuit
from repro.core import MixedSignalTestGenerator, format_table


def main(name: str = "c432") -> None:
    mixed = example3_mixed_circuit(name)
    print(f"mixed circuit: {mixed.name}")
    for key, value in mixed.stats().items():
        print(f"  {key:18s} {value}")

    generator = MixedSignalTestGenerator(mixed)

    print("\nper-comparator composite-value observability:")
    observability = generator.comparator_observability()
    marks = ["ok" if ok else "BLOCKED" for ok in observability]
    print(
        format_table(
            ["comparator"] + [f"Vt{i + 1}" for i in range(15)],
            [["D propagates?"] + marks],
        )
    )

    print("\nanalog element tests (this takes a couple of minutes):")
    rows = []
    for test in generator.analog_tests():
        rows.append(
            [
                test.element,
                test.status.value,
                test.parameter or "-",
                test.ed_percent,
                "-" if test.comparator_index is None
                else f"Vt{test.comparator_index + 1}",
                "-" if test.observing_output is None else test.observing_output,
            ]
        )
    print(
        format_table(
            ["element", "status", "parameter", "ED[%]", "comparator",
             "observe"],
            rows,
        )
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "c432")

#!/usr/bin/env python3
"""Constrained digital ATPG: how analog coupling degrades testability.

Runs the backtrack-free BDD test generator over a benchmark circuit
twice — stand-alone and with 15 of its inputs bound to a flash
converter's thermometer code — and prints exactly what changed: which
faults died, how vector counts moved, what it cost.

Run:  python examples/constrained_digital_atpg.py [circuit-name]
"""

import sys

from repro.atpg import TestStatus, run_atpg
from repro.circuits import benchmark_digital
from repro.conversion import constraint_for_lines, random_line_assignment
from repro.core import format_table


def main(name: str = "c432") -> None:
    digital = benchmark_digital(name)
    lines = random_line_assignment(
        digital.inputs, 15, seed=sum(ord(c) for c in name)
    )
    print(f"{name}: {digital.stats()}")
    print(f"converter-driven lines: {', '.join(lines)}")

    free = run_atpg(digital)
    constrained = run_atpg(digital, constraint=constraint_for_lines(lines))

    print()
    print(
        format_table(
            ["case", "faults", "untestable", "vectors", "CPU [s]"],
            [
                ["stand-alone", free.n_faults, free.n_untestable,
                 free.n_vectors, f"{free.cpu_seconds:.2f}"],
                ["constrained", constrained.n_faults,
                 constrained.n_untestable, constrained.n_vectors,
                 f"{constrained.cpu_seconds:.2f}"],
            ],
        )
    )

    killed = [
        r.fault
        for r in constrained.results
        if r.status is TestStatus.CONSTRAINED_UNTESTABLE
    ]
    print(f"\nfaults killed by the analog constraints ({len(killed)}):")
    for fault in killed[:20]:
        print(f"  {fault}")
    if len(killed) > 20:
        print(f"  ... and {len(killed) - 20} more")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "c432")

#!/usr/bin/env python3
"""The Figure 8 validation board: inject faults, watch them get caught.

Simulates the paper's discrete realization (state-variable filter +
8-bit ADC + 4-bit adder), injects each component's computed worst-case
deviation, and reports the measured parameter deviation and whether the
digital outputs changed — the Table 8 experiment, interactively.

Run:  python examples/state_variable_board.py [seed]
"""

import sys

from repro.core import StateVariableBoard, format_table


def main(seed: int = 1995) -> None:
    board = StateVariableBoard(seed=seed)
    print(f"board realization (seed {seed}), as-built component spread:")
    for element, deviation in sorted(board.realization.items()):
        print(f"  {element:4s} {deviation:+.3%}")

    print("\nbaseline digital response:", board.digital_response())
    print("\ncomputing worst-case deviations and injecting faults ...")
    rows = board.table8()
    print(
        format_table(
            ["T", "C", "CD[%]", "MPD[%]", "out of box", "digital"],
            [
                [r.parameter, r.component, r.cd_percent, r.mpd_percent,
                 "yes" if r.out_of_box else "NO",
                 "detected" if r.detected_digitally else "missed"]
                for r in rows
            ],
            title="Table 8 (regenerated)",
        )
    )
    caught = sum(1 for r in rows if r.out_of_box)
    print(f"\n{caught}/{len(rows)} injected faults out of the 5% box")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1995)

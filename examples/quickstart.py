#!/usr/bin/env python3
"""Quickstart: generate a complete mixed-signal test program.

Builds the paper's Figure 4 circuit (band-pass filter -> 2-comparator
converter -> the Figure 3 digital block) and runs the whole flow:

1. analog worst-case deviations and stimulus selection,
2. composite-value propagation through the digital block,
3. constrained stuck-at ATPG for the digital block itself.

Run:  python examples/quickstart.py
"""

from repro.atpg import format_program
from repro.circuits import fig4_mixed_circuit
from repro.core import MixedSignalTestGenerator


def main() -> None:
    mixed = fig4_mixed_circuit()
    print(f"circuit: {mixed.name}")
    for key, value in mixed.stats().items():
        print(f"  {key:18s} {value}")

    generator = MixedSignalTestGenerator(mixed)
    report = generator.run(include_unconstrained=True)

    print()
    print(report.summary())
    print()
    print(format_program(report.program(), title="analog test program"))

    print()
    print("digital vectors (constrained):")
    for index, vector in enumerate(report.digital_run.vectors, start=1):
        bits = " ".join(f"{k}={v}" for k, v in sorted(vector.items()))
        print(f"  {index:3d}. {bits}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: generate a complete mixed-signal test program.

Drives the paper's Figure 4 circuit (band-pass filter -> 2-comparator
converter -> the Figure 3 digital block) through the unified workbench
API:

1. analog worst-case deviations and stimulus selection,
2. composite-value propagation through the digital block,
3. constrained stuck-at ATPG for the digital block itself,

then serializes the whole run as one versioned JSON artifact.

Run:  python examples/quickstart.py
"""

from repro.api import GeneratorConfig, Workbench
from repro.atpg import format_program


def main() -> None:
    wb = Workbench()
    session = wb.session(
        generator=GeneratorConfig(include_unconstrained=True)
    )

    mixed = session.circuit("fig4")
    print(f"circuit: {mixed.name}")
    for key, value in mixed.stats().items():
        print(f"  {key:18s} {value}")

    result = session.run(mixed)
    report = result.report

    print()
    print(result.summary())
    print()
    print(format_program(report.program(), title="analog test program"))

    print()
    print("digital vectors (constrained):")
    for index, vector in enumerate(report.digital_run.vectors, start=1):
        bits = " ".join(f"{k}={v}" for k, v in sorted(vector.items()))
        print(f"  {index:3d}. {bits}")

    artifact = result.to_artifact()
    print()
    print(f"artifact: kind={artifact.kind}, {len(artifact.to_json())} bytes"
          " of versioned JSON (artifact.save('fig4.json') to persist)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Anatomy of the constraint function Fc for a flash converter.

Shows how few of a digital block's input assignments survive analog
coupling: a 15-line thermometer code allows 16 of 32768 assignments,
and a popcount encoder fed purely from the converter loses a third of
its faults to the constraints.

Run:  python examples/adc_constraints.py
"""

from repro.atpg import run_atpg
from repro.bdd import BddManager
from repro.conversion import (
    FlashAdc,
    constraint_for_lines,
    popcount_encoder,
    thermometer_constraint,
)


def main() -> None:
    adc = FlashAdc(n_comparators=15)
    print("flash converter thresholds (V):")
    print("  " + "  ".join(f"{v:.3f}" for v in adc.thresholds()))

    lines = [f"T{i}" for i in range(15)]
    mgr = BddManager(lines)
    fc = thermometer_constraint(mgr, lines)
    allowed = mgr.sat_count(fc)
    print(
        f"\nFc allows {allowed} of {2**15} input assignments "
        f"({100 * allowed / 2**15:.3f}%) — BDD size {mgr.size(fc)} nodes"
    )

    encoder = popcount_encoder(15)
    free = run_atpg(encoder)
    constrained = run_atpg(encoder, constraint=constraint_for_lines(lines))
    print(
        f"\npopcount encoder stand-alone : {free.n_faults} faults, "
        f"{free.n_untestable} untestable, {free.n_vectors} vectors"
    )
    print(
        f"popcount encoder constrained : {constrained.n_faults} faults, "
        f"{constrained.n_untestable} untestable, "
        f"{constrained.n_vectors} vectors"
    )
    print(
        "\nevery surviving vector is a valid thermometer code the analog "
        "block can actually produce:"
    )
    for vector in constrained.vectors[:8]:
        code = "".join(str(vector[f"T{i}"]) for i in range(15))
        print(f"  {code}")


if __name__ == "__main__":
    main()

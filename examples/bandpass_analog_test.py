#!/usr/bin/env python3
"""Example 1 walkthrough: testing the band-pass filter's elements.

Reproduces section 2.1.1 interactively: measure the five performance
parameters, compute the worst-case deviation matrix, pick the test set,
and show what each chosen measurement guarantees.

Run:  python examples/bandpass_analog_test.py
"""

from repro.analog import (
    deviation_matrix,
    select_parameters_maxcoverage,
    sensitivity_matrix,
)
from repro.circuits import bandpass_filter, bandpass_parameters
from repro.core import format_table


def main() -> None:
    circuit = bandpass_filter()
    parameters = bandpass_parameters()

    print("nominal parameter values:")
    for parameter in parameters:
        print(f"  {parameter.name:4s} = {parameter.measure(circuit):.6g}")

    print("\nnormalized sensitivities:")
    sens = sensitivity_matrix(circuit, parameters)
    rows = []
    for i, parameter in enumerate(sens.parameters):
        rows.append(
            [parameter.name]
            + [f"{sens.values[i, j]:+.2f}" for j in range(len(sens.elements))]
        )
    print(format_table(["T \\ E"] + sens.elements, rows))

    print("\nworst-case element deviations (5% boxes):")
    matrix = deviation_matrix(circuit, parameters)
    rows = [[p] + matrix.row(p) for p in matrix.parameters]
    print(format_table(["T \\ E"] + matrix.elements, rows))

    selection = select_parameters_maxcoverage(matrix)
    print(f"\nselected test set: {selection.parameters}")
    for element, (parameter, ed) in sorted(selection.element_coverage.items()):
        print(
            f"  measuring {parameter:4s} guarantees detection of any "
            f"{element} deviation beyond {ed:.1f}%"
        )


if __name__ == "__main__":
    main()
